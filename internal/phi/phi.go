// Package phi simulates the Intel Xeon Phi heterogeneous offload
// programming model used in the paper's Figure 8 experiment: input data is
// transferred from the host to the coprocessor, a device-side parallel
// region with up to 240 hardware threads computes partial sums, and the
// results are transferred back. The transfer is modeled as a real memory
// copy plus a configurable latency + bandwidth cost, reproducing the
// paper's observation that at high thread counts "the runtimes for all
// three summation methods are dominated by the data transfer times between
// the host CPU and device".
package phi

import (
	"fmt"
	"time"

	"repro/internal/omp"
)

// Device models one Xeon Phi coprocessor.
type Device struct {
	// Name is a free-form label used in reports.
	Name string
	// MaxThreads caps the device-side parallel region (240 for the 5110P).
	MaxThreads int
	// TransferLatency is charged once per offload direction.
	TransferLatency time.Duration
	// TransferBytesPerSec models PCIe bandwidth; zero disables the modeled
	// cost (the real memcpy still happens).
	TransferBytesPerSec float64
}

// Phi5110P returns a device configured like the paper's B1PRQ-5110P: 240
// hardware threads behind a PCIe-generation transfer cost (~6 GB/s with
// tens of microseconds of launch latency).
func Phi5110P() *Device {
	return &Device{
		Name:                "Xeon Phi 5110P (simulated)",
		MaxThreads:          240,
		TransferLatency:     50 * time.Microsecond,
		TransferBytesPerSec: 6e9,
	}
}

// Buffer is device-resident memory holding float64 elements.
type Buffer struct {
	data []float64
}

// Len returns the element count.
func (b *Buffer) Len() int { return len(b.data) }

// Data exposes the device-side storage to kernels. Host code should not
// retain the slice across offload boundaries.
func (b *Buffer) Data() []float64 { return b.data }

// transferCost blocks for the modeled wire time of moving n bytes.
func (d *Device) transferCost(bytes int) {
	cost := d.TransferLatency
	if d.TransferBytesPerSec > 0 {
		cost += time.Duration(float64(bytes) / d.TransferBytesPerSec * float64(time.Second))
	}
	if cost > 0 {
		time.Sleep(cost)
	}
}

// OffloadIn copies xs to a fresh device buffer, charging the transfer cost
// (a real copy plus the modeled wire time).
func (d *Device) OffloadIn(xs []float64) *Buffer {
	buf := &Buffer{data: make([]float64, len(xs))}
	copy(buf.data, xs)
	d.transferCost(8 * len(xs))
	return buf
}

// OffloadOut copies device results back to the host, charging the transfer
// cost.
func (d *Device) OffloadOut(b *Buffer) []float64 {
	out := make([]float64, len(b.data))
	copy(out, b.data)
	d.transferCost(8 * len(b.data))
	return out
}

// Run executes body as a device-side parallel region over [0, n) with the
// requested thread count, clamped to the device's MaxThreads (mirroring
// OMP_NUM_THREADS on the coprocessor). It returns the thread count actually
// used.
func (d *Device) Run(threads, n int, body func(tid, lo, hi int)) (int, error) {
	if threads < 1 {
		return 0, fmt.Errorf("phi: thread count %d", threads)
	}
	if d.MaxThreads > 0 && threads > d.MaxThreads {
		threads = d.MaxThreads
	}
	omp.NewTeam(threads).For(n, body)
	return threads, nil
}
