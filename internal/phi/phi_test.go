package phi

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// fastDevice returns a device with no modeled wire time, for tests.
func fastDevice(maxThreads int) *Device {
	return &Device{Name: "test", MaxThreads: maxThreads}
}

func TestOffloadRoundTrip(t *testing.T) {
	d := fastDevice(4)
	xs := []float64{1, 2, 3, 4.5}
	buf := d.OffloadIn(xs)
	if buf.Len() != 4 {
		t.Fatalf("Len = %d", buf.Len())
	}
	xs[0] = 99 // host mutation must not reach the device copy
	out := d.OffloadOut(buf)
	if out[0] != 1 || out[3] != 4.5 {
		t.Errorf("round trip = %v", out)
	}
	buf.Data()[1] = 42 // device mutation must not reach the host copy
	if out[1] != 2 {
		t.Error("OffloadOut aliased device memory")
	}
}

func TestRunClampsToMaxThreads(t *testing.T) {
	d := fastDevice(8)
	used, err := d.Run(500, 100, func(tid, lo, hi int) {})
	if err != nil {
		t.Fatal(err)
	}
	if used != 8 {
		t.Errorf("used %d threads, want clamp to 8", used)
	}
	used, err = d.Run(3, 100, func(tid, lo, hi int) {})
	if err != nil {
		t.Fatal(err)
	}
	if used != 3 {
		t.Errorf("used %d threads, want 3", used)
	}
	if _, err := d.Run(0, 10, nil); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestRunCoversRange(t *testing.T) {
	d := fastDevice(240)
	const n = 1000
	counts := make([]atomic.Int32, n)
	if _, err := d.Run(17, n, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i].Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, counts[i].Load())
		}
	}
}

func TestTransferCostIsCharged(t *testing.T) {
	d := &Device{MaxThreads: 4, TransferLatency: 20 * time.Millisecond}
	start := time.Now()
	d.OffloadIn(make([]float64, 8))
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency not charged: %v", elapsed)
	}
	d2 := &Device{MaxThreads: 4, TransferBytesPerSec: 1e6} // 1 MB/s
	start = time.Now()
	d2.OffloadIn(make([]float64, 12500)) // 100 KB -> ~100 ms
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("bandwidth not charged: %v", elapsed)
	}
}

func TestPhi5110PPreset(t *testing.T) {
	d := Phi5110P()
	if d.MaxThreads != 240 {
		t.Errorf("MaxThreads = %d", d.MaxThreads)
	}
	if d.TransferBytesPerSec <= 0 || d.TransferLatency <= 0 {
		t.Error("preset transfer model missing")
	}
}

// The Figure 8 structure: offload the array, reduce on-device into
// per-thread HP partials, combine on the host; the result must be
// bit-identical to sequential summation for any thread count.
func TestOffloadHPReduction(t *testing.T) {
	p := core.Params384
	r := rng.New(88)
	xs := rng.UniformSet(r, 20000, -0.5, 0.5)
	seq := core.NewAccumulator(p)
	seq.AddAll(xs)

	d := fastDevice(240)
	for _, threads := range []int{1, 7, 64, 240} {
		buf := d.OffloadIn(xs)
		partials := make([]*core.Accumulator, threads)
		used, err := d.Run(threads, buf.Len(), func(tid, lo, hi int) {
			acc := core.NewAccumulator(p)
			acc.AddAll(buf.Data()[lo:hi])
			partials[tid] = acc
		})
		if err != nil {
			t.Fatal(err)
		}
		final := core.NewAccumulator(p)
		for tid := 0; tid < used; tid++ {
			if partials[tid].Err() != nil {
				t.Fatal(partials[tid].Err())
			}
			final.AddHP(partials[tid].Sum())
		}
		if !final.Sum().Equal(seq.Sum()) {
			t.Errorf("threads=%d: offload sum differs from sequential", threads)
		}
	}
}
