// Package rblas provides reproducible BLAS-1-style vector reductions built
// on the HP accumulator: sums, absolute sums, dot products, Euclidean
// norms, means, and variances whose results are bit-identical regardless
// of evaluation order or worker count. It plays the role ReproBLAS plays
// over the Demmel-Nguyen binned format, here over the paper's fixed-point
// representation, and is the layer a numerical application would adopt.
//
// All reductions are internally EXACT: sums accumulate every bit, products
// go through Kulisch-style integer significand multiplication
// (core.AddProductExact), and only the final conversion to float64 rounds
// (correctly, to nearest-even). Nrm2's square root introduces one further
// deterministic rounding. Multi-worker execution partitions the input and
// merges per-worker partial accumulators; because the merge is exact
// integer addition the worker count cannot change any result bit.
package rblas

import (
	"errors"
	"math/big"

	"repro/internal/core"
	"repro/internal/omp"
)

// Config selects the accumulator format and the parallelism of the
// reductions.
type Config struct {
	// Params is the HP format; it must cover the dynamic range of the data
	// (and of squared data, for Dot/Nrm2/Variance).
	Params core.Params
	// Workers is the goroutine count; 0 or 1 means sequential. Results are
	// bit-identical for every value.
	Workers int
}

// Default returns a configuration suitable for data with magnitudes
// roughly in [1e-50, 1e50]: HP(N=8, k=4) sequential.
func Default() Config { return Config{Params: core.Params512, Workers: 1} }

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// reduce runs body over worker blocks and merges the per-worker
// accumulators in worker order.
func (c Config) reduce(n int, body func(acc *core.Accumulator, lo, hi int)) (*core.Accumulator, error) {
	team := omp.NewTeam(c.workers())
	total := omp.Reduce(team, n,
		func(int) *core.Accumulator { return core.NewAccumulator(c.Params) },
		func(acc *core.Accumulator, _, lo, hi int) { body(acc, lo, hi) },
		func(into, from *core.Accumulator) { into.Merge(from) })
	if err := total.Err(); err != nil {
		return nil, err
	}
	return total, nil
}

// Sum returns the reproducible sum of xs.
func Sum(c Config, xs []float64) (float64, error) {
	acc, err := c.reduce(len(xs), func(acc *core.Accumulator, lo, hi int) {
		acc.AddAll(xs[lo:hi])
	})
	if err != nil {
		return 0, err
	}
	return acc.Float64(), nil
}

// ASum returns the reproducible sum of |x_i| (BLAS dasum).
func ASum(c Config, xs []float64) (float64, error) {
	acc, err := c.reduce(len(xs), func(acc *core.Accumulator, lo, hi int) {
		for _, x := range xs[lo:hi] {
			if x < 0 {
				x = -x
			}
			acc.Add(x)
		}
	})
	if err != nil {
		return 0, err
	}
	return acc.Float64(), nil
}

// Dot returns the reproducible dot product of xs and ys (BLAS ddot): every
// product is exact, so the result is the correctly rounded true value.
func Dot(c Config, xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("rblas: dot length mismatch")
	}
	acc, err := c.reduce(len(xs), func(acc *core.Accumulator, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc.AddProductExact(xs[i], ys[i])
		}
	})
	if err != nil {
		return 0, err
	}
	return acc.Float64(), nil
}

// sumSquares returns the exact sum of squares as an HP accumulator.
func sumSquares(c Config, xs []float64) (*core.Accumulator, error) {
	return c.reduce(len(xs), func(acc *core.Accumulator, lo, hi int) {
		for _, x := range xs[lo:hi] {
			acc.AddProductExact(x, x)
		}
	})
}

// Nrm2 returns the reproducible Euclidean norm sqrt(sum x_i^2) (BLAS
// dnrm2). The sum of squares is exact; the square root is evaluated in
// 256-bit arithmetic and rounded once to float64, so the result is
// deterministic on every platform and within 1 ulp of the true norm.
func Nrm2(c Config, xs []float64) (float64, error) {
	acc, err := sumSquares(c, xs)
	if err != nil {
		return 0, err
	}
	f := new(big.Float).SetPrec(256).SetRat(acc.Sum().Rat())
	f.Sqrt(f)
	v, _ := f.Float64()
	return v, nil
}

// Mean returns the reproducible arithmetic mean: the exact sum divided by
// n in 256-bit arithmetic, rounded once. It returns an error for empty
// input.
func Mean(c Config, xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("rblas: mean of empty vector")
	}
	acc, err := c.reduce(len(xs), func(acc *core.Accumulator, lo, hi int) {
		acc.AddAll(xs[lo:hi])
	})
	if err != nil {
		return 0, err
	}
	r := acc.Sum().Rat()
	r.Quo(r, new(big.Rat).SetInt64(int64(len(xs))))
	f := new(big.Float).SetPrec(256).SetRat(r)
	v, _ := f.Float64()
	return v, nil
}

// Variance returns the reproducible unbiased sample variance: both the sum
// and the sum of squares are exact, and the final
// (sum2 - sum^2/n) / (n-1) is evaluated in rational arithmetic before one
// rounding — so catastrophic cancellation in the textbook formula cannot
// occur. It returns an error for fewer than two values.
func Variance(c Config, xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("rblas: variance needs >= 2 values")
	}
	sumAcc, err := c.reduce(len(xs), func(acc *core.Accumulator, lo, hi int) {
		acc.AddAll(xs[lo:hi])
	})
	if err != nil {
		return 0, err
	}
	sqAcc, err := sumSquares(c, xs)
	if err != nil {
		return 0, err
	}
	n := new(big.Rat).SetInt64(int64(len(xs)))
	sum := sumAcc.Sum().Rat()
	sum2 := sqAcc.Sum().Rat()
	mean2 := new(big.Rat).Mul(sum, sum)
	mean2.Quo(mean2, n)
	v := new(big.Rat).Sub(sum2, mean2)
	v.Quo(v, new(big.Rat).SetInt64(int64(len(xs)-1)))
	f := new(big.Float).SetPrec(256).SetRat(v)
	out, _ := f.Float64()
	return out, nil
}
