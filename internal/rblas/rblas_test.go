package rblas

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
)

func data(n int, seed uint64) []float64 {
	return rng.UniformSet(rng.New(seed), n, -1, 1)
}

func TestSumMatchesOracle(t *testing.T) {
	xs := data(5000, 1)
	got, err := Sum(Default(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := exact.Sum(xs); got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestASum(t *testing.T) {
	xs := data(3000, 2)
	got, err := ASum(Default(), xs)
	if err != nil {
		t.Fatal(err)
	}
	abs := make([]float64, len(xs))
	for i, x := range xs {
		abs[i] = math.Abs(x)
	}
	if want := exact.Sum(abs); got != want {
		t.Errorf("ASum = %g, want %g", got, want)
	}
	if zero, err := ASum(Default(), nil); err != nil || zero != 0 {
		t.Errorf("ASum(nil) = %g, %v", zero, err)
	}
}

func TestDotExact(t *testing.T) {
	xs := data(2000, 3)
	ys := data(2000, 4)
	got, err := Dot(Default(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat)
	for i := range xs {
		px := new(big.Rat).SetFloat64(xs[i])
		py := new(big.Rat).SetFloat64(ys[i])
		want.Add(want, px.Mul(px, py))
	}
	f := new(big.Float).SetPrec(256).SetRat(want)
	wantF, _ := f.Float64()
	if got != wantF {
		t.Errorf("Dot = %.20g, want %.20g", got, wantF)
	}
	if _, err := Dot(Default(), xs, ys[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDotIllConditioned(t *testing.T) {
	got, err := Dot(Default(), []float64{1e15, -1e15, 1}, []float64{1e15, 1e15, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("Dot = %g, want 0.5", got)
	}
}

func TestNrm2(t *testing.T) {
	// 3-4-5 triangle, scaled.
	got, err := Nrm2(Default(), []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Nrm2(3,4) = %g", got)
	}
	// Large cancellation-free vector vs naive computation: within 1 ulp.
	xs := data(4000, 5)
	got, err = Nrm2(Default(), xs)
	if err != nil {
		t.Fatal(err)
	}
	naive := 0.0
	for _, x := range xs {
		naive += x * x
	}
	if math.Abs(got-math.Sqrt(naive)) > 1e-12*got {
		t.Errorf("Nrm2 = %g vs naive %g", got, math.Sqrt(naive))
	}
	// The naive path overflows on large inputs; the exact path does not
	// as long as the format covers x^2.
	large := []float64{1e35, 1e35} // squares reach 1e70, within Params512
	cfg := Config{Params: core.Params512, Workers: 1}
	got, err = Nrm2(cfg, large)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e35 * math.Sqrt2
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("Nrm2(1e35,1e35) = %g, want %g", got, want)
	}
}

func TestMeanAndVariance(t *testing.T) {
	got, err := Mean(Default(), []float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Errorf("Mean = %g, %v", got, err)
	}
	v, err := Variance(Default(), []float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if want := 32.0 / 7.0; math.Abs(v-want) > 1e-15 {
		t.Errorf("Variance = %g, want %g", v, want)
	}
	if _, err := Mean(Default(), nil); err == nil {
		t.Error("empty mean accepted")
	}
	if _, err := Variance(Default(), []float64{1}); err == nil {
		t.Error("single-value variance accepted")
	}
}

// The textbook variance formula catastrophically cancels in float64 when
// the mean dwarfs the spread; the exact-rational evaluation must not.
func TestVarianceNoCatastrophicCancellation(t *testing.T) {
	base := 1e9
	xs := []float64{base, base + 1, base + 2}
	v, err := Variance(Default(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("Variance = %.17g, want exactly 1", v)
	}
}

// Every reduction must be bit-identical for every worker count.
func TestWorkerInvariance(t *testing.T) {
	xs := data(30000, 6)
	ys := data(30000, 7)
	type fn struct {
		name string
		eval func(c Config) (float64, error)
	}
	fns := []fn{
		{"Sum", func(c Config) (float64, error) { return Sum(c, xs) }},
		{"ASum", func(c Config) (float64, error) { return ASum(c, xs) }},
		{"Dot", func(c Config) (float64, error) { return Dot(c, xs, ys) }},
		{"Nrm2", func(c Config) (float64, error) { return Nrm2(c, xs) }},
		{"Mean", func(c Config) (float64, error) { return Mean(c, xs) }},
		{"Variance", func(c Config) (float64, error) { return Variance(c, xs) }},
	}
	for _, f := range fns {
		ref, err := f.eval(Config{Params: core.Params512, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		for _, w := range []int{2, 3, 7, 16} {
			got, err := f.eval(Config{Params: core.Params512, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", f.name, w, err)
			}
			if got != ref {
				t.Errorf("%s: workers=%d result %.20g != sequential %.20g",
					f.name, w, got, ref)
			}
		}
	}
}

func TestRangeErrorsPropagate(t *testing.T) {
	cfg := Config{Params: core.Params128, Workers: 2}
	if _, err := Sum(cfg, []float64{1e300}); err == nil {
		t.Error("overflow not surfaced")
	}
	if _, err := Dot(cfg, []float64{1e60}, []float64{1e60}); err == nil {
		t.Error("dot overflow not surfaced")
	}
}
