// Package rng provides deterministic, seedable pseudo-random number
// generation and the workload generators used by the paper's experiments.
//
// The generators are hand-rolled (splitmix64 for seeding, xoshiro256++ for
// the stream) so that the exact same value sequences are produced on every
// platform and Go release. Reproducible inputs are a precondition for
// demonstrating reproducible sums: every experiment in this repository is
// parameterized by an explicit seed.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances a 64-bit state and returns the next output. It is used
// only to expand a user seed into the xoshiro256++ state, per the reference
// initialization procedure.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256++ pseudo-random generator. The zero value is not
// valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// give independent-looking streams; the same seed always gives the same
// stream on every architecture.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros would be a fixed point; splitmix64 output cannot
	// be all zero across four draws, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1.0p-53
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded draws.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Shuffle permutes xs in place using the Fisher-Yates algorithm.
func (r *Source) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Exp2Uniform returns a value x with |x| in [2^minExp, 2^maxExp): the binary
// exponent is uniform over [minExp, maxExp) and the 52 mantissa bits are
// uniform, giving the wide-dynamic-range distribution used by the paper's
// Figure 4 workload. The sign is random.
func (r *Source) Exp2Uniform(minExp, maxExp int) float64 {
	if minExp >= maxExp {
		panic("rng: Exp2Uniform requires minExp < maxExp")
	}
	e := minExp + r.Intn(maxExp-minExp)
	// 1.mantissa in [1, 2), scaled by 2^e.
	m := 1.0 + float64(r.Uint64()>>12)*0x1.0p-52
	x := math.Ldexp(m, e)
	if r.Uint64()&1 == 1 {
		x = -x
	}
	return x
}
