package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(124)
	same := 0
	d := New(123)
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

// Pin the first few outputs so any accidental change to the generator (which
// would silently change every experiment's inputs) fails loudly.
func TestGoldenSequence(t *testing.T) {
	r := New(42)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(42)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("non-deterministic generator")
		}
	}
	if got[0] == got[1] && got[1] == got[2] {
		t.Fatal("degenerate output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(8)
	lo, hi := -0.5, 0.5
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean) > 0.01 {
		t.Errorf("mean of Uniform(-0.5,0.5) = %g, want ~0", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("digit %d count %d, want ~10000", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(10)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := Reorder(r, xs)
	if len(ys) != len(xs) {
		t.Fatal("length changed")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	if sx != sy {
		t.Error("multiset changed")
	}
	// Original untouched.
	for i, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8} {
		if xs[i] != v {
			t.Fatal("Reorder mutated its input")
		}
	}
}

func TestExp2UniformRange(t *testing.T) {
	r := New(11)
	minE, maxE := -223, 191
	sawNeg, sawPos := false, false
	for i := 0; i < 20000; i++ {
		v := r.Exp2Uniform(minE, maxE)
		m := math.Abs(v)
		if m < math.Ldexp(1, minE) || m >= math.Ldexp(1, maxE) {
			t.Fatalf("magnitude %g outside [2^%d, 2^%d)", m, minE, maxE)
		}
		if v < 0 {
			sawNeg = true
		} else {
			sawPos = true
		}
	}
	if !sawNeg || !sawPos {
		t.Error("signs not mixed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp2Uniform with empty range should panic")
		}
	}()
	r.Exp2Uniform(3, 3)
}

func TestZeroSumProperties(t *testing.T) {
	r := New(12)
	xs := ZeroSum(r, 1024, 0.001)
	if len(xs) != 1024 {
		t.Fatalf("length %d", len(xs))
	}
	// Every positive value must have a matching negation (exact float
	// cancellation pair), and magnitudes stay within [0, 0.001].
	pos := map[float64]int{}
	for _, x := range xs {
		if math.Abs(x) > 0.001 {
			t.Fatalf("magnitude %g > 0.001", x)
		}
		if x >= 0 {
			pos[x]++
		} else {
			pos[-x]--
		}
	}
	for v, c := range pos {
		if c != 0 {
			t.Errorf("value %g unmatched (count %d)", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("odd n should panic")
		}
	}()
	ZeroSum(r, 3, 1)
}

func TestZeroSumIsShuffled(t *testing.T) {
	r := New(13)
	xs := ZeroSum(r, 1024, 0.001)
	// If unshuffled, the first half would be all non-negative.
	negInFirstHalf := 0
	for _, x := range xs[:512] {
		if x < 0 {
			negInFirstHalf++
		}
	}
	if negInFirstHalf == 0 {
		t.Error("ZeroSum output does not appear shuffled")
	}
}

func TestUniformSetAndWideRange(t *testing.T) {
	r := New(14)
	xs := UniformSet(r, 500, -0.5, 0.5)
	if len(xs) != 500 {
		t.Fatal("length")
	}
	ws := WideRange(r, 500, -223, 191)
	if len(ws) != 500 {
		t.Fatal("length")
	}
	for _, w := range ws {
		if w == 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("bad wide-range value %g", w)
		}
	}
}

func TestPropIntnUnbiasedBounds(t *testing.T) {
	r := New(15)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeBelow(t *testing.T) {
	// 1 + 2^-60 quantized at 2^-40 drops the tail.
	x := 1 + math.Ldexp(1, -60)
	if got := QuantizeBelow(x, -40); got != 1 {
		t.Errorf("QuantizeBelow = %g, want 1", got)
	}
	// Already-representable values pass through bit-identically.
	if got := QuantizeBelow(1.5, -40); got != 1.5 {
		t.Errorf("1.5 -> %g", got)
	}
	if got := QuantizeBelow(-1.5, -1); got != -1.5 {
		t.Errorf("-1.5 at res 2^-1 -> %g", got)
	}
	// Values entirely below the resolution vanish.
	if got := QuantizeBelow(math.Ldexp(1, -100), -40); got != 0 {
		t.Errorf("tiny -> %g", got)
	}
	// Negative values truncate toward zero in magnitude... the mantissa is
	// signed, so -x quantizes to the negation of x's quantization.
	x2 := 3.141592653589793
	if QuantizeBelow(-x2, -30) != -QuantizeBelow(x2, -30) {
		t.Error("sign asymmetry")
	}
	// Zero and non-finite pass through.
	if QuantizeBelow(0, -10) != 0 || !math.IsInf(QuantizeBelow(math.Inf(1), -10), 1) {
		t.Error("special values")
	}
}

func TestWideRangeQuantized(t *testing.T) {
	r := New(16)
	xs := WideRangeQuantized(r, 1000, -223, 191, -256)
	for _, x := range xs {
		if x == 0 {
			t.Fatal("zero value emitted")
		}
		if QuantizeBelow(x, -256) != x {
			t.Fatalf("value %g not quantized", x)
		}
		m := math.Abs(x)
		if m < math.Ldexp(1, -224) || m >= math.Ldexp(1, 191) {
			t.Fatalf("magnitude %g out of range", m)
		}
	}
}
