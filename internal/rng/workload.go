package rng

import "math"

// Workload generators reproducing the input distributions of the paper's
// experiments. Every generator is deterministic given its Source so that an
// experiment can be re-run bit-identically.

// ZeroSum returns a set of n semi-random values whose exact sum is zero
// (paper §II.A): n/2 values uniform in [0, maxMag] followed by their
// negations, shuffled into a random order. n must be even and positive.
//
// The paper uses maxMag = 0.001 to mimic the per-step force contributions of
// N-body codes.
func ZeroSum(r *Source, n int, maxMag float64) []float64 {
	if n <= 0 || n%2 != 0 {
		panic("rng: ZeroSum requires positive even n")
	}
	xs := make([]float64, n)
	for i := 0; i < n/2; i++ {
		v := r.Uniform(0, maxMag)
		xs[i] = v
		xs[n/2+i] = -v
	}
	r.Shuffle(xs)
	return xs
}

// UniformSet returns n values uniform in [lo, hi), the paper §IV.B workload
// ([-0.5, 0.5] for the strong-scaling experiments).
func UniformSet(r *Source, n int, lo, hi float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Uniform(lo, hi)
	}
	return xs
}

// WideRange returns n values with magnitudes spanning [2^minExp, 2^maxExp)
// and random signs, the paper §IV.A workload for Figure 4 (values in
// [-2^191, 2^191] with the smallest magnitude ±2^-223).
func WideRange(r *Source, n, minExp, maxExp int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Exp2Uniform(minExp, maxExp)
	}
	return xs
}

// Reorder returns a freshly shuffled copy of xs, leaving xs untouched. It is
// the primitive behind the random-summation-order trials of Figures 1 and 2.
func Reorder(r *Source, xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	r.Shuffle(out)
	return out
}

// QuantizeBelow clears every mantissa bit of x with weight below 2^resExp,
// returning the truncated value. The Figure 4 workload quantizes its
// wide-range values to the accumulators' common resolution so that each
// value is exactly representable in both the HP and Hallberg formats (the
// paper's fixed-point conversions would otherwise silently truncate).
func QuantizeBelow(x float64, resExp int) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	frac, e := math.Frexp(x) // x = frac * 2^e, |frac| in [0.5, 1)
	neg := frac < 0
	if neg {
		frac = -frac
	}
	m := uint64(frac * (1 << 53)) // magnitude mantissa: mask bits, not two's complement
	low := e - 53                 // weight exponent of the mantissa's LSB
	drop := resExp - low
	if drop > 0 {
		if drop > 53 {
			return 0
		}
		m &^= uint64(1)<<uint(drop) - 1
	}
	v := math.Ldexp(float64(m), low)
	if neg {
		v = -v
	}
	return v
}

// WideRangeQuantized is WideRange with every value quantized to resolution
// 2^resExp (see QuantizeBelow). Zero results from quantization are redrawn.
func WideRangeQuantized(r *Source, n, minExp, maxExp, resExp int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		for {
			v := QuantizeBelow(r.Exp2Uniform(minExp, maxExp), resExp)
			if v != 0 {
				xs[i] = v
				break
			}
		}
	}
	return xs
}
