// Package scan provides reproducible parallel prefix sums. A prefix sum's
// intermediate values are exactly the partial sums a reduction would form,
// so naive parallel scans inherit floating-point non-associativity twice
// over: both the block offsets and the in-block accumulations depend on
// the decomposition. Here every partial sum is carried exactly in HP
// fixed-point and rounded once per output element, so prefix[i] is the
// correctly rounded true prefix — bit-identical for every worker count.
//
// The algorithm is the standard two-phase blocked scan: phase 1 reduces
// each worker's block to an exact block total; the (cheap, sequential)
// offset pass accumulates exclusive block offsets; phase 2 re-walks each
// block from its exact offset emitting rounded prefixes.
//
// Error outcomes are decomposition-independent (wrap-and-check-final):
// phase 1 block partials and the offset pass run in wrapping mode, because
// a from-zero block partial may wrap for one worker count and not another
// even though two's-complement addition is exact mod 2^(64N) and the
// offsets come out bit-identical either way. Overflow is instead detected
// in phase 2, where every accumulator walks the true prefix trajectory —
// identical for every worker count — so both the values and the error are
// the same for workers=1 and workers=64. Conversion range errors
// (NaN/Inf/overflow/underflow of an input element) are per-element and
// reported from phase 1, earliest element first. See DESIGN.md §9.
package scan

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/omp"
)

// Inclusive computes the reproducible inclusive prefix sums of xs:
// out[i] = round(x_0 + ... + x_i), with the sum carried exactly. It
// returns the first conversion/overflow error encountered.
func Inclusive(p core.Params, xs []float64, workers int) ([]float64, error) {
	if workers < 1 {
		return nil, fmt.Errorf("scan: worker count %d", workers)
	}
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	team := omp.NewTeam(workers)

	// Phase 1: exact block totals through the exponent-indexed
	// superaccumulator (inherently wrapping — deferred bins make per-add
	// overflow unobservable, which is exactly the policy here). A block
	// partial that wraps is not an error — only phase 2, which follows the
	// true prefix trajectory, decides overflow, so the verdict cannot depend
	// on where the block boundaries fell. Conversion errors are sticky per
	// block; scanning blocks in index order below reports the earliest one.
	totals := make([]*core.SuperAccumulator, workers)
	team.Run(func(tid int) {
		lo, hi := omp.StaticBlock(n, workers, tid)
		s := core.NewSuper(p)
		s.AddSlice(xs[lo:hi])
		totals[tid] = s
	})
	for _, s := range totals {
		if err := s.Err(); err != nil {
			return nil, err
		}
	}

	// Exclusive offsets: offsets[t] = exact (mod 2^(64N)) sum of blocks
	// < t — bit-identical to the sequential prefix state at that element,
	// wraps included, because multi-limb addition is associative mod
	// 2^(64N).
	offsets := make([]*core.HP, workers)
	running := core.NewAccumulator(p).AllowWrap()
	for t := 0; t < workers; t++ {
		offsets[t] = running.Sum().Clone()
		running.AddHP(totals[t].Sum())
	}
	if err := running.Err(); err != nil {
		return nil, err
	}

	// Phase 2: emit rounded prefixes from each exact offset, again through
	// the batch kernel. AddRound keeps the state canonical across each add,
	// so every state equals the sequential prefix state bit-for-bit and
	// the sign-rule overflow verdict fires on exactly the same elements
	// for every worker count; the per-element first error (conversion or
	// overflow, whichever came first in element order) likewise matches
	// the sequential accumulator. AddRound rounds in place through the
	// batch's reused scratch, so the per-element loop does not allocate.
	errs := make([]error, workers)
	team.Run(func(tid int) {
		lo, hi := omp.StaticBlock(n, workers, tid)
		b := core.NewBatch(p)
		b.AddHP(offsets[tid])
		var firstErr error
		for i := lo; i < hi; i++ {
			v, overflow := b.AddRound(xs[i])
			if firstErr == nil {
				if err := b.Err(); err != nil {
					firstErr = err
				} else if overflow {
					firstErr = core.ErrOverflow
				}
			}
			out[i] = v
		}
		errs[tid] = firstErr
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Exclusive computes reproducible exclusive prefix sums:
// out[0] = 0, out[i] = round(x_0 + ... + x_(i-1)).
func Exclusive(p core.Params, xs []float64, workers int) ([]float64, error) {
	if workers < 1 {
		return nil, fmt.Errorf("scan: worker count %d", workers)
	}
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	inc, err := Inclusive(p, xs[:n-1], workers)
	if err != nil {
		return nil, err
	}
	copy(out[1:], inc)
	return out, nil
}
