package scan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
)

func TestInclusiveMatchesOracle(t *testing.T) {
	r := rng.New(41)
	xs := rng.UniformSet(r, 2000, -0.5, 0.5)
	got, err := Inclusive(core.Params384, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for i, x := range xs {
		oracle.Add(x)
		if got[i] != oracle.Float64() {
			t.Fatalf("prefix %d: %.20g, want %.20g", i, got[i], oracle.Float64())
		}
	}
}

func TestInclusiveWorkerInvariance(t *testing.T) {
	r := rng.New(42)
	xs := rng.UniformSet(r, 5000, -0.5, 0.5)
	ref, err := Inclusive(core.Params384, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7, 16, 64} {
		got, err := Inclusive(core.Params384, xs, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: prefix %d differs", w, i)
			}
		}
	}
}

func TestExclusive(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got, err := Exclusive(core.Params384, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Exclusive[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if out, err := Inclusive(core.Params384, nil, 3); err != nil || len(out) != 0 {
		t.Error("empty inclusive")
	}
	if out, err := Exclusive(core.Params384, nil, 3); err != nil || len(out) != 0 {
		t.Error("empty exclusive")
	}
	out, err := Inclusive(core.Params384, []float64{2.5}, 8) // workers > n
	if err != nil || len(out) != 1 || out[0] != 2.5 {
		t.Errorf("single element: %v %v", out, err)
	}
	if _, err := Inclusive(core.Params384, []float64{1}, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Exclusive(core.Params384, []float64{1}, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestRangeErrorSurfaces(t *testing.T) {
	if _, err := Inclusive(core.Params128, []float64{1e300}, 2); err == nil {
		t.Error("overflow not surfaced")
	}
	// Accumulated overflow across blocks.
	xs := []float64{0x1p62, 0x1p62, 0x1p62}
	if _, err := Inclusive(core.Params128, xs, 3); err == nil {
		t.Error("offset overflow not surfaced")
	}
}

// The cancellation case naive scans get wrong: a running sum that returns
// to a tiny value after huge intermediates.
func TestScanThroughCancellation(t *testing.T) {
	xs := []float64{1e15, 1, -1e15, 0.5}
	got, err := Inclusive(core.Params384, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for i, x := range xs {
		oracle.Add(x)
		if got[i] != oracle.Float64() {
			t.Fatalf("prefix %d = %.20g, want %.20g", i, got[i], oracle.Float64())
		}
	}
	if got[3] != 1.5 {
		t.Errorf("final prefix = %g, want 1.5", got[3])
	}
}
