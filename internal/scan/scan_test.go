package scan

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
)

func TestInclusiveMatchesOracle(t *testing.T) {
	r := rng.New(41)
	xs := rng.UniformSet(r, 2000, -0.5, 0.5)
	got, err := Inclusive(core.Params384, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for i, x := range xs {
		oracle.Add(x)
		if got[i] != oracle.Float64() {
			t.Fatalf("prefix %d: %.20g, want %.20g", i, got[i], oracle.Float64())
		}
	}
}

func TestInclusiveWorkerInvariance(t *testing.T) {
	r := rng.New(42)
	xs := rng.UniformSet(r, 5000, -0.5, 0.5)
	ref, err := Inclusive(core.Params384, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7, 16, 64} {
		got, err := Inclusive(core.Params384, xs, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: prefix %d differs", w, i)
			}
		}
	}
}

func TestExclusive(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got, err := Exclusive(core.Params384, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Exclusive[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if out, err := Inclusive(core.Params384, nil, 3); err != nil || len(out) != 0 {
		t.Error("empty inclusive")
	}
	if out, err := Exclusive(core.Params384, nil, 3); err != nil || len(out) != 0 {
		t.Error("empty exclusive")
	}
	out, err := Inclusive(core.Params384, []float64{2.5}, 8) // workers > n
	if err != nil || len(out) != 1 || out[0] != 2.5 {
		t.Errorf("single element: %v %v", out, err)
	}
	if _, err := Inclusive(core.Params384, []float64{1}, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Exclusive(core.Params384, []float64{1}, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestRangeErrorSurfaces(t *testing.T) {
	if _, err := Inclusive(core.Params128, []float64{1e300}, 2); err == nil {
		t.Error("overflow not surfaced")
	}
	// Accumulated overflow across blocks.
	xs := []float64{0x1p62, 0x1p62, 0x1p62}
	if _, err := Inclusive(core.Params128, xs, 3); err == nil {
		t.Error("offset overflow not surfaced")
	}
}

// The cancellation case naive scans get wrong: a running sum that returns
// to a tiny value after huge intermediates.
func TestScanThroughCancellation(t *testing.T) {
	xs := []float64{1e15, 1, -1e15, 0.5}
	got, err := Inclusive(core.Params384, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for i, x := range xs {
		oracle.Add(x)
		if got[i] != oracle.Float64() {
			t.Fatalf("prefix %d = %.20g, want %.20g", i, got[i], oracle.Float64())
		}
	}
	if got[3] != 1.5 {
		t.Errorf("final prefix = %g, want 1.5", got[3])
	}
}

// scanOutcome captures everything observable from one scan call so
// decomposition-invariance can be asserted exactly: the output bits and
// the error identity.
type scanOutcome struct {
	bits []uint64
	err  error
}

func runScan(t *testing.T, exclusive bool, p core.Params, xs []float64, workers int) scanOutcome {
	t.Helper()
	var out []float64
	var err error
	if exclusive {
		out, err = Exclusive(p, xs, workers)
	} else {
		out, err = Inclusive(p, xs, workers)
	}
	o := scanOutcome{err: err}
	if err == nil {
		o.bits = make([]uint64, len(out))
		for i, v := range out {
			o.bits[i] = math.Float64bits(v)
		}
	}
	return o
}

// TestPropScanWorkerInvariance is the DESIGN.md §9 error-path invariant:
// for every worker count 1..8, Inclusive and Exclusive must produce
// bit-identical outputs AND identical error outcomes, even on workloads
// whose from-zero block partials wrap for some decompositions (phase 1
// runs wrapping; overflow is decided on the true prefix trajectory in
// phase 2, which is the same for every worker count).
func TestPropScanWorkerInvariance(t *testing.T) {
	p := core.Params{N: 2, K: 1} // tight range (max 2^63): overflows are easy to hit
	big := math.Ldexp(1, 62)
	r := rng.New(777)
	workloads := map[string][]float64{
		"uniform in range":   rng.UniformSet(r, 300, -1000, 1000),
		"cancelling spikes":  {big, -big, big, -big, big, -big, big, -big, 1.5},
		"overflowing prefix": {big, big, big, -big, -big, -big, 0.25},
		"late overflow":      {1, 2, 3, 4, 5, 6, 7, big, big, big},
		"conversion fault":   {1, 2, math.Ldexp(1, -100), 4, 5, 6}, // underflows (k=1)
		"nan input":          {1, 2, math.NaN(), 4, 5, 6, 7, 8},
		"mixed fault+wrap":   {big, big, math.Ldexp(1, -100), -big, -big, 1},
	}
	for name, xs := range workloads {
		for _, exclusive := range []bool{false, true} {
			kind := "inclusive"
			if exclusive {
				kind = "exclusive"
			}
			t.Run(name+"/"+kind, func(t *testing.T) {
				ref := runScan(t, exclusive, p, xs, 1)
				for w := 2; w <= 8; w++ {
					got := runScan(t, exclusive, p, xs, w)
					if got.err != ref.err {
						t.Fatalf("workers=%d: err %v, want %v (workers=1)", w, got.err, ref.err)
					}
					for i := range ref.bits {
						if got.bits[i] != ref.bits[i] {
							t.Fatalf("workers=%d: prefix %d bits %016x, want %016x",
								w, i, got.bits[i], ref.bits[i])
						}
					}
				}
			})
		}
	}
}

// TestScanBlockPartialWrapIsNotAnError pins the wrap-and-check-final
// behavior concretely: a workload whose middle block (at workers=3) sums
// far past the format range, while every true prefix stays in range, must
// succeed for every worker count — before the wrapping phase 1 this
// errored for exactly the worker counts whose block boundaries isolated
// the large values.
func TestScanBlockPartialWrapIsNotAnError(t *testing.T) {
	p := core.Params{N: 2, K: 1}
	big := math.Ldexp(1, 62)
	// Prefixes: big, big+1, 1, big+1, 1, 1.5 — all in range. The block
	// [big, -big-...]-style partials, however they fall, may wrap.
	xs := []float64{big, 1, -big, big, -big, 0.5}
	ref, err := Inclusive(p, xs, 1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for w := 2; w <= 6; w++ {
		got, err := Inclusive(p, xs, w)
		if err != nil {
			t.Fatalf("workers=%d: block-partial wrap surfaced as error: %v", w, err)
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: prefix %d = %g, want %g", w, i, got[i], ref[i])
			}
		}
	}
}

// TestInclusiveSteadyStateAllocs bounds the per-element cost of phase 2:
// beyond the fixed per-call structures (output slice, per-worker
// accumulators and offsets), the rounding loop must not allocate.
func TestInclusiveSteadyStateAllocs(t *testing.T) {
	xs := rng.UniformSet(rng.New(9), 4096, -0.5, 0.5)
	small := rng.UniformSet(rng.New(9), 64, -0.5, 0.5)
	run := func(data []float64) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Inclusive(core.Params384, data, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(small)
	full := run(xs)
	// 64x the elements must not mean more allocations: the per-element
	// loop (fused add + scratch-buffer rounding) is allocation-free, so
	// the only growth is the output slice the API returns.
	if grow := full - base; grow > 1 {
		t.Errorf("allocations grew by %.1f when n grew 64x; per-element path allocates", grow)
	}
}
