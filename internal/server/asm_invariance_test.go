package server

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// TestLoopbackEnvelopeBackendInvariant runs the same workload through the
// full hpsumd loopback path (client framing, server ingest, shard fold,
// canonical HP envelope) once on the assembly kernel lane and once on the
// generic lane, and requires byte-identical HP envelope certificates. The
// envelope is the cross-machine equality certificate (DESIGN.md), so the
// kernel backend must be invisible in it — this is the end-to-end
// counterpart of the per-kernel differential tests. On builds or machines
// without assembly the two runs both take the generic lane and the test
// degenerates to a determinism check, which is still worth keeping.
func TestLoopbackEnvelopeBackendInvariant(t *testing.T) {
	xs := rng.UniformSet(rng.New(20160523), 50000, -0.5, 0.5)
	run := func(asm bool) string {
		prev := core.SetAsmEnabled(asm)
		defer core.SetAsmEnabled(prev)
		_, c := newTestServer(t, Config{})
		if _, err := c.Create("inv", core.Params384); err != nil {
			t.Fatal(err)
		}
		c.FrameLen = 1009 // ragged frames: chunk boundaries off the vector width
		if _, err := c.Stream("inv", xs); err != nil {
			t.Fatal(err)
		}
		info, err := c.Get("inv")
		if err != nil {
			t.Fatal(err)
		}
		if info.HP == "" {
			t.Fatal("empty HP envelope")
		}
		return info.HP
	}
	asmEnv := run(true)
	genEnv := run(false)
	if asmEnv != genEnv {
		t.Fatalf("HP envelope depends on kernel backend:\n  asm     %s\n  generic %s", asmEnv, genEnv)
	}
}
