package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/audit"
	"repro/internal/core"
)

// Audit wiring. With auditing enabled the server keeps two append-only
// files: a frame journal recording every accepted ingest frame (and every
// restore hand-off) in admission order, and a hash-linked audit log of
// snapshot records. Each record attests, per accumulator, to a frame-count
// watermark and the exact canonical sum at that watermark, taken at a
// quiescent point — so the first W journaled frames of an accumulator are
// exactly the W frames its record covers, and cmd/hpaudit can replay the
// journal against the log to prove a reported total is the exact sum of the
// accepted frames, or name the first divergent link.

// auditState carries the audit files; accumulators hold a pointer so the
// ingest path can journal without reaching back into the Server.
type auditState struct {
	journal *audit.Journal
	log     *audit.Log
}

// EnableAudit opens (or resumes) the frame journal and the hash-linked
// audit log. It must be called before any accumulator exists — frames
// accepted by an unaudited accumulator would be invisible to replay — and
// before Restore, so restore hand-offs are journaled.
func (s *Server) EnableAudit(journalPath, logPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if s.aud != nil {
		return errors.New("server: audit already enabled")
	}
	if len(s.accs) > 0 {
		return errors.New("server: EnableAudit must run before accumulators are created")
	}
	j, err := audit.OpenJournal(journalPath)
	if err != nil {
		return fmt.Errorf("server: audit journal: %w", err)
	}
	l, err := audit.OpenLog(logPath)
	if err != nil {
		j.Close()
		return fmt.Errorf("server: audit log: %w", err)
	}
	s.aud = &auditState{journal: j, log: l}
	return nil
}

// CloseAudit syncs and closes the audit files. Call after the final audit
// record (hpsumd: after the SIGTERM snapshot), once no ingest can run.
func (s *Server) CloseAudit() error {
	s.mu.Lock()
	aud := s.aud
	s.aud = nil
	s.mu.Unlock()
	if aud == nil {
		return nil
	}
	jerr := aud.journal.Close()
	lerr := aud.log.Close()
	if jerr != nil {
		return jerr
	}
	return lerr
}

// AuditRecord cuts every accumulator at a quiescent point and appends one
// hash-linked record attesting to the agreed state of each. The journal is
// fsynced before the record is chained, so a record never attests to frames
// the journal could still lose. Divergent minority replicas are quarantined
// by the cut itself (agree), so a lying replica's value is never attested.
func (s *Server) AuditRecord(reason string) (*audit.Record, error) {
	s.mu.RLock()
	aud := s.aud
	s.mu.RUnlock()
	if aud == nil {
		return nil, errors.New("server: audit not enabled")
	}
	names := s.Names()
	entries := make([]audit.Entry, 0, len(names))
	for _, name := range names {
		a := s.Lookup(name)
		if a == nil {
			continue // deleted between Names and Lookup
		}
		e, err := a.auditEntry()
		if err != nil {
			return nil, fmt.Errorf("server: audit cut %q: %w", name, err)
		}
		entries = append(entries, e)
	}
	if err := aud.journal.Sync(); err != nil {
		return nil, fmt.Errorf("server: audit journal sync: %w", err)
	}
	rec, err := aud.log.Append(reason, entries)
	if err != nil {
		return nil, fmt.Errorf("server: audit record: %w", err)
	}
	mAuditRecords.Inc()
	return rec, nil
}

// auditEntry cuts this accumulator at a quiescent point: the exclusive
// lock waits out every in-flight ingest (each of which journals before
// releasing the shared lock), so the agreed frame count equals the
// journaled frame count exactly.
func (a *Accumulator) auditEntry() (audit.Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, _, _, err := a.agree()
	if err != nil {
		return audit.Entry{}, err
	}
	env, err := st.sum.MarshalBinary()
	if err != nil {
		return audit.Entry{}, err
	}
	e := audit.Entry{
		Name:   a.name,
		Frames: st.frames,
		Adds:   st.adds,
		Digest: audit.DigestEnv(env),
		Env:    env,
	}
	if st.err != nil {
		e.ErrText = st.err.Error()
	}
	return e, nil
}

// journalOp records one accepted ingest frame. Called under the
// accumulator's shared lock, after the frame has landed on every active
// replica.
func (aud *auditState) journalOp(name string, o op) error {
	e := &audit.JournalEntry{Name: name}
	switch {
	case o.hp != nil:
		env, err := o.hp.MarshalBinary()
		if err != nil {
			return err
		}
		e.Kind, e.Payload = audit.JournalHP, env
	default:
		e.Kind = audit.JournalFloats
		payload := make([]byte, 0, 8*len(o.xs))
		for _, x := range o.xs {
			payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(x))
		}
		e.Payload = payload
	}
	if err := aud.journal.Append(e); err != nil {
		return err
	}
	mJournalFrames.Inc()
	return nil
}

// journalSeed records a restore hand-off: the exact state and counters the
// accumulator was seeded with, so replay can verify the restored state
// extends the journaled trajectory bit for bit.
func (aud *auditState) journalSeed(name string, ck *core.SumCheckpoint, frames uint64) error {
	env, err := ck.Sum.MarshalBinary()
	if err != nil {
		return err
	}
	return aud.journal.Append(&audit.JournalEntry{
		Kind: audit.JournalSeed, Name: name,
		Frames: frames, Adds: ck.Step, Payload: env,
	})
}
