package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/rng"
)

// auditPaths returns journal/log/snapshot paths in a fresh temp dir.
func auditPaths(t *testing.T) (string, string, string) {
	dir := t.TempDir()
	return filepath.Join(dir, "frames.hpfj"), filepath.Join(dir, "audit.hpal"), filepath.Join(dir, "snap.hpss")
}

// Full lifecycle: audited ingest across two accumulators, a periodic audit
// record, a snapshot + shutdown record, a restart that restores and keeps
// appending to the same journal and chain, and a final record — then the
// offline replay proves every attested watermark is the exact sum of the
// journaled frames.
func TestAuditEndToEndReplayClean(t *testing.T) {
	jpath, lpath, spath := auditPaths(t)
	xs1 := rng.UniformSet(rng.New(41), 600, -1, 1)
	ys1 := rng.UniformSet(rng.New(42), 300, -5, 5)
	xs2 := rng.UniformSet(rng.New(43), 400, -1, 1)
	xs3 := rng.UniformSet(rng.New(44), 500, -1, 1)

	s := New(Config{Shards: 2, Replicas: 2, Quorum: 2})
	if err := s.EnableAudit(jpath, lpath); err != nil {
		t.Fatal(err)
	}
	alpha, _, err := s.Create("alpha", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	beta, _, err := s.Create("beta", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	feedFloats(t, alpha, xs1, 64)
	feedFloats(t, beta, ys1, 64)
	// An exact HP hand-off is journaled and replayed too.
	h, err := core.FromFloat64(core.Params384, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := beta.AddHP(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AuditRecord("periodic"); err != nil {
		t.Fatal(err)
	}
	feedFloats(t, alpha, xs2, 64)
	if err := s.Snapshot(spath); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AuditRecord("sigterm"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.CloseAudit(); err != nil {
		t.Fatal(err)
	}

	// Restart: same journal and chain, state restored from the snapshot.
	s2 := New(Config{Shards: 2, Replicas: 2, Quorum: 2})
	if err := s2.EnableAudit(jpath, lpath); err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Restore(spath); err != nil || n != 2 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	feedFloats(t, s2.Lookup("alpha"), xs3, 64)
	if _, err := s2.AuditRecord("sigterm"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := s2.CloseAudit(); err != nil {
		t.Fatal(err)
	}

	// Offline replay: the auditor's view, from the files alone.
	logData, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := audit.ReadLog(logData)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d audit records, want 3", len(records))
	}
	jf, err := os.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	res, err := audit.Verify(records, audit.NewJournalReader(jf))
	if err != nil {
		t.Fatalf("replay verification failed: %v", err)
	}
	if res.Records != 3 || res.TornTail || res.UnauditedFrames != 0 {
		t.Fatalf("replay summary %+v", res)
	}
	// The final attested alpha state is the exact oracle sum.
	fe, ok := res.Final["alpha"]
	if !ok {
		t.Fatal("no final entry for alpha")
	}
	var fh core.HP
	if err := fh.UnmarshalBinary(fe.Env); err != nil {
		t.Fatal(err)
	}
	txt, err := fh.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	all := append(append(append([]float64(nil), xs1...), xs2...), xs3...)
	if string(txt) != oracleHPText(t, core.Params384, all) {
		t.Fatalf("attested alpha sum diverges from oracle: %s", txt)
	}
}

// A tampered log or a journal missing accepted frames must be named, not
// tolerated.
func TestAuditNamesDivergentLink(t *testing.T) {
	jpath, lpath, _ := auditPaths(t)
	s := New(Config{Shards: 1})
	if err := s.EnableAudit(jpath, lpath); err != nil {
		t.Fatal(err)
	}
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	feedFloats(t, a, rng.UniformSet(rng.New(51), 300, -1, 1), 50)
	if _, err := s.AuditRecord("periodic"); err != nil {
		t.Fatal(err)
	}
	feedFloats(t, a, rng.UniformSet(rng.New(52), 300, -1, 1), 50)
	if _, err := s.AuditRecord("sigterm"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.CloseAudit(); err != nil {
		t.Fatal(err)
	}

	logData, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := audit.ReadLog(logData)
	if err != nil {
		t.Fatal(err)
	}

	// Tampered chain: flip one byte inside the second record.
	mauled := append([]byte(nil), logData...)
	mauled[len(mauled)-10] ^= 0x40
	if _, err := audit.ReadLog(mauled); err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("tampered log not pinned to its record: %v", err)
	}

	// Journal truncated below the last watermark: the log attests frames
	// the journal never recorded.
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	_, verr := audit.Verify(records, audit.NewJournalReader(strings.NewReader(string(jdata[:len(jdata)/2]))))
	var d *audit.Divergence
	if !errors.As(verr, &d) {
		t.Fatalf("half journal verified: %v", verr)
	}
	if d.Name != "acc" {
		t.Fatalf("divergence names %q", d.Name)
	}
}

// Satellite: a crash injected between the snapshot's durability stages
// must leave a restorable file either way — the old complete image if the
// crash hits before the rename, the new complete image after.
func TestSnapshotCrashLeavesRestorableFile(t *testing.T) {
	_, _, spath := auditPaths(t)
	s := New(Config{Shards: 1})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs1 := rng.UniformSet(rng.New(61), 400, -1, 1)
	feedFloats(t, a, xs1, 64)
	if err := s.Snapshot(spath); err != nil {
		t.Fatal(err)
	}

	restoreHP := func() string {
		t.Helper()
		s2 := New(Config{Shards: 1})
		defer s2.Close()
		if _, err := s2.Restore(spath); err != nil {
			t.Fatalf("restore: %v", err)
		}
		info, err := s2.Lookup("acc").State()
		if err != nil {
			t.Fatal(err)
		}
		return info.HP
	}
	wantOld := oracleHPText(t, core.Params384, xs1)

	// Crash before the rename: the temp file dies, the old image survives.
	xs2 := rng.UniformSet(rng.New(62), 400, -1, 1)
	feedFloats(t, a, xs2, 64)
	crashed := errors.New("injected crash")
	snapshotCrash = func(stage string) error {
		if stage == "written" {
			return crashed
		}
		return nil
	}
	if err := s.Snapshot(spath); !errors.Is(err, crashed) {
		snapshotCrash = nil
		t.Fatalf("crash not injected: %v", err)
	}
	snapshotCrash = nil
	if got := restoreHP(); got != wantOld {
		t.Fatalf("post-crash restore lost the old image:\n got  %s\n want %s", got, wantOld)
	}

	// Crash after the rename: the new complete image is already in place.
	snapshotCrash = func(stage string) error {
		if stage == "renamed" {
			return crashed
		}
		return nil
	}
	if err := s.Snapshot(spath); !errors.Is(err, crashed) {
		snapshotCrash = nil
		t.Fatalf("crash not injected: %v", err)
	}
	snapshotCrash = nil
	all := append(append([]float64(nil), xs1...), xs2...)
	if got, want := restoreHP(), oracleHPText(t, core.Params384, all); got != want {
		t.Fatalf("post-rename-crash restore wrong:\n got  %s\n want %s", got, want)
	}
}

// Replicated, audited, end to end: a lying replica can delay reads but can
// never poison an audit record — the attested values replay clean.
func TestAuditRecordNeverAttestsLyingReplica(t *testing.T) {
	jpath, lpath, _ := auditPaths(t)
	src := rng.New(9)
	lies := 0
	hook := func(replica int, env []byte) []byte {
		if replica == 1 && lies < 1 {
			lies++
			return rngCorrupt(src, env)
		}
		return env
	}
	s := New(Config{Shards: 1, Replicas: 3, Quorum: 2, ReportHook: hook})
	if err := s.EnableAudit(jpath, lpath); err != nil {
		t.Fatal(err)
	}
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	feedFloats(t, a, rng.UniformSet(rng.New(71), 500, -1, 1), 50)
	// The cut itself hits the lie: the record must carry the quorum value.
	if _, err := s.AuditRecord("periodic"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.CloseAudit(); err != nil {
		t.Fatal(err)
	}
	logData, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := audit.ReadLog(logData)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := audit.Verify(records, audit.NewJournalReader(jf)); err != nil {
		t.Fatalf("record written under a lying replica does not replay: %v", err)
	}
	if lies != 1 {
		t.Fatalf("lie fired %d times, want 1", lies)
	}
}

func rngCorrupt(src *rng.Source, env []byte) []byte {
	out := append([]byte(nil), env...)
	out[src.Intn(len(out))] ^= 0x01
	return out
}
