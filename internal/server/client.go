package server

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Client is a minimal hpsumd client speaking the binary ingest protocol,
// shared by cmd/hpload, cmd/benchsum's server-loopback workload, and the
// test suites. It handles 429 backpressure by honoring Retry-After and
// resending exactly the unaccepted frame suffix, which is safe because
// frames are admitted whole and addition is commutative.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// FrameLen is values per ingest frame (default 4096).
	FrameLen int
	// ReqFrames is the number of frames batched into one POST (default 64).
	ReqFrames int
	// RetryWait overrides the server's Retry-After hint between 429 retries
	// (0 honors the hint; useful to shorten in tests).
	RetryWait time.Duration
	// MaxRetries bounds consecutive 429 rounds for one request before
	// giving up (default 100).
	MaxRetries int
	// MaxTransportRetries bounds retries of one request body after a
	// transport failure (connection reset, EOF mid-POST). Each retry
	// resends the identical body under the same Ingest-Id, so frames the
	// server accepted before the connection died are skipped server-side
	// rather than double-counted. Default 4.
	MaxTransportRetries int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) frameLen() int {
	if c.FrameLen > 0 {
		return c.FrameLen
	}
	return 4096
}

func (c *Client) reqFrames() int {
	if c.ReqFrames > 0 {
		return c.ReqFrames
	}
	return 64
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 100
}

func (c *Client) maxTransportRetries() int {
	if c.MaxTransportRetries > 0 {
		return c.MaxTransportRetries
	}
	return 4
}

// newIngestID mints a fresh idempotency key for one POST body.
func newIngestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing an upload over; an empty
		// id just disables skip-ahead resume for this body.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// isTransientTransport reports whether err is a connection-level failure
// worth retrying with the same body: the server (or the network) severed
// the connection without delivering a response, so the request may or may
// not have been partially processed — exactly the case Ingest-Id resume
// makes safe to retry.
func isTransientTransport(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return true
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	return false
}

// transportBackoff is a jittered exponential backoff: attempt 1 waits
// ~10ms, doubling per attempt, capped at 1s, with the wait drawn uniformly
// from the upper half of the window so simultaneous retriers spread out.
func transportBackoff(attempt int) time.Duration {
	d := 10 * time.Millisecond << min(attempt, 7)
	if d > time.Second {
		d = time.Second
	}
	jitter := time.Duration(time.Now().UnixNano()) % (d / 2)
	return d/2 + jitter
}

// decodeJSON reads resp's body into v (ignoring decode errors on error
// statuses where the body may be absent).
func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

func (c *Client) url(format string, args ...any) string {
	return c.Base + fmt.Sprintf(format, args...)
}

// Create registers name with format p (zero Params: server default).
func (c *Client) Create(name string, p core.Params) (Info, error) {
	var body io.Reader
	if p != (core.Params{}) {
		b, err := json.Marshal(createRequest{N: p.N, K: p.K})
		if err != nil {
			return Info{}, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(http.MethodPut, c.url("/v1/acc/%s", name), body)
	if err != nil {
		return Info{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Info{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return Info{}, respError("create", resp)
	}
	var info Info
	if err := decodeJSON(resp, &info); err != nil {
		return Info{}, err
	}
	return info, nil
}

// Delete removes name.
func (c *Client) Delete(name string) error {
	req, err := http.NewRequest(http.MethodDelete, c.url("/v1/acc/%s", name), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return respError("delete", resp)
	}
	return nil
}

// Get flushes and reads the accumulator: the rounded sum, the canonical HP
// certificate, and the adds/frames counters.
func (c *Client) Get(name string) (Info, error) {
	span := trace.StartRoot("client.read")
	span.Attr(trace.Str("acc", name))
	defer span.End()
	resp, err := c.http().Get(c.url("/v1/acc/%s", name))
	if err != nil {
		return Info{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Info{}, respError("get", resp)
	}
	var info Info
	if err := decodeJSON(resp, &info); err != nil {
		return Info{}, err
	}
	return info, nil
}

// List returns the registered accumulator names.
func (c *Client) List() ([]string, error) {
	resp, err := c.http().Get(c.url("/v1/acc"))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, respError("list", resp)
	}
	var out struct {
		Accumulators []listEntry `json:"accumulators"`
	}
	if err := decodeJSON(resp, &out); err != nil {
		return nil, err
	}
	names := make([]string, len(out.Accumulators))
	for i, e := range out.Accumulators {
		names[i] = e.Name
	}
	return names, nil
}

// StreamStats summarizes one Stream call.
type StreamStats struct {
	Frames  int // frames accepted by the server
	Values  int // float64 values accepted
	Retries int // 429 rounds absorbed
}

// Stream sends every value of xs to name as framed batches, batching
// frames into POSTs and transparently retrying the unaccepted suffix on
// backpressure. It returns once the server has acked every frame.
func (c *Client) Stream(name string, xs []float64) (StreamStats, error) {
	span := trace.StartRoot("client.stream")
	span.Attr(trace.Str("acc", name))
	span.Attr(trace.Int("values", int64(len(xs))))
	defer span.End()
	flen := c.frameLen()
	frames := make([][]float64, 0, len(xs)/flen+1)
	for len(xs) > 0 {
		n := min(flen, len(xs))
		frames = append(frames, xs[:n])
		xs = xs[n:]
	}
	return c.streamFrames(name, frames, span.Context())
}

// streamFrames sends pre-partitioned frames.
func (c *Client) streamFrames(name string, frames [][]float64, parent trace.Context) (StreamStats, error) {
	var stats StreamStats
	per := c.reqFrames()
	for len(frames) > 0 {
		batch := frames[:min(per, len(frames))]
		acked, retries, err := c.postFrames(name, batch, parent)
		stats.Frames += acked
		stats.Retries += retries
		for _, f := range batch[:acked] {
			stats.Values += len(f)
		}
		if err != nil {
			return stats, err
		}
		frames = frames[acked:]
	}
	return stats, nil
}

// postFrames POSTs one batch of frames, absorbing 429 rounds by resending
// the unaccepted suffix and transport failures by resending the identical
// body under the same Ingest-Id (the server skips the already-owned prefix,
// so a connection severed after acceptance but before the response cannot
// double-count a frame). It returns how many of the batch's frames were
// acked in total. When parent is a valid trace context, each POST attempt
// is a client.send span whose context rides ahead of the data frames as a
// FrameTrace, so the server's ingest span (and the shard folds under it)
// parent back to this exact attempt.
func (c *Client) postFrames(name string, frames [][]float64, parent trace.Context) (acked, retries int, err error) {
	var buf []byte
	base := -1 // acked count the current body was built at; -1 forces a build
	id := ""
	transportTries := 0
	for retry := 0; ; retry++ {
		if acked >= len(frames) {
			return acked, retries, nil
		}
		sendSpan := trace.Start(parent, "client.send")
		sendSpan.Attr(trace.Int("frames", int64(len(frames)-acked)))
		if acked != base {
			// The suffix changed (429 partial accept, or first attempt):
			// a new body needs a fresh idempotency key. An unchanged body
			// (transport retry) keeps both body and id, byte for byte.
			base = acked
			id = newIngestID()
			transportTries = 0
			buf = buf[:0]
			for _, f := range frames[acked:] {
				buf = AppendFloatFrame(buf, f)
			}
		}
		body := buf
		if parent.Valid() {
			// The trace frame carries this attempt's span, so it cannot be
			// part of the retry-stable body; prepend per attempt. Trace
			// frames are metadata and never counted by the server.
			tf := AppendTraceFrame(nil, sendSpan.Context())
			body = append(tf, buf...)
		}
		req, rerr := http.NewRequest(http.MethodPost, c.url("/v1/acc/%s/add", name),
			bytes.NewReader(body))
		if rerr != nil {
			sendSpan.End()
			return acked, retries, rerr
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if id != "" {
			req.Header.Set("Ingest-Id", id)
		}
		resp, err := c.http().Do(withConnectTrace(req, parent))
		if err != nil {
			sendSpan.Attr(trace.Str("transport_error", err.Error()))
			sendSpan.End()
			if isTransientTransport(err) && transportTries < c.maxTransportRetries() {
				transportTries++
				retries++
				wait := transportBackoff(transportTries)
				resumeSpan := trace.Start(parent, "client.resume")
				resumeSpan.Attr(trace.Str("kind", "transport"))
				resumeSpan.Attr(trace.Int("retry", int64(transportTries)))
				resumeSpan.Attr(trace.Int("wait_ms", wait.Milliseconds()))
				time.Sleep(wait)
				resumeSpan.End()
				continue
			}
			return acked, retries, err
		}
		var res AddResult
		status := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		derr := decodeJSON(resp, &res)
		sendSpan.Attr(trace.Int("status", int64(status)))
		sendSpan.End()
		if derr != nil && status == http.StatusOK {
			return acked, retries, derr
		}
		// frames_accepted is the id's owned prefix of the current body
		// (skipped frames from a severed earlier attempt included), so the
		// batch total is the body's base plus the server's count.
		acked = base + res.FramesAccepted
		switch status {
		case http.StatusOK:
			return acked, retries, nil
		case http.StatusTooManyRequests:
			retries++
			if retry >= c.maxRetries() {
				return acked, retries, fmt.Errorf("server: still busy after %d retries", retries)
			}
			wait := c.RetryWait
			if wait <= 0 {
				wait = time.Second
				if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
					wait = time.Duration(s) * time.Second
				}
			}
			resumeSpan := trace.Start(parent, "client.resume")
			resumeSpan.Attr(trace.Int("retry", int64(retries)))
			resumeSpan.Attr(trace.Int("wait_ms", wait.Milliseconds()))
			time.Sleep(wait)
			resumeSpan.End()
		default:
			return acked, retries, fmt.Errorf("server: add: HTTP %d: %s", status, res.Error)
		}
	}
}

// withConnectTrace arms an httptrace hook that brackets any fresh TCP dial
// for req in a client.connect span (pooled-connection reuse dials nothing
// and records nothing). Both callbacks run on the transport's dial
// goroutine, so the span value never crosses goroutines mid-flight.
func withConnectTrace(req *http.Request, parent trace.Context) *http.Request {
	if !parent.Valid() {
		return req
	}
	var connSpan trace.Span
	ct := &httptrace.ClientTrace{
		ConnectStart: func(network, addr string) {
			connSpan = trace.Start(parent, "client.connect")
			connSpan.Attr(trace.Str("addr", addr))
		},
		ConnectDone: func(network, addr string, err error) {
			connSpan.End()
		},
	}
	return req.WithContext(httptrace.WithClientTrace(req.Context(), ct))
}

// AddHP hands off one exact HP partial sum.
func (c *Client) AddHP(name string, h *core.HP) error {
	buf, err := AppendHPFrame(nil, h)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.url("/v1/acc/%s/add", name),
		"application/octet-stream", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	var res AddResult
	if resp.StatusCode != http.StatusOK {
		return respError("addhp", resp)
	}
	return decodeJSON(resp, &res)
}

// Sum drives the one-shot endpoint: frames in, Info out.
func (c *Client) Sum(xs []float64, p core.Params) (Info, error) {
	var buf []byte
	flen := c.frameLen()
	for off := 0; off < len(xs); off += flen {
		buf = AppendFloatFrame(buf, xs[off:min(off+flen, len(xs))])
	}
	u := c.url("/v1/sum")
	if p != (core.Params{}) {
		u += fmt.Sprintf("?n=%d&k=%d", p.N, p.K)
	}
	resp, err := c.http().Post(u, "application/octet-stream", bytes.NewReader(buf))
	if err != nil {
		return Info{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Info{}, respError("sum", resp)
	}
	var info Info
	if err := decodeJSON(resp, &info); err != nil {
		return Info{}, err
	}
	return info, nil
}

// respError drains an error response into a readable error.
func respError(opName string, resp *http.Response) error {
	defer resp.Body.Close()
	var eb errorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
	if eb.Error == "" {
		eb.Error = resp.Status
	}
	return fmt.Errorf("server: %s: HTTP %d: %s", opName, resp.StatusCode, eb.Error)
}
