package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// killConn severs the connection the moment the handler tries to respond:
// the request body has been fully processed, but the client never learns
// the outcome — the exact window where a naive retry double-counts.
type killConn struct{ http.ResponseWriter }

func (k killConn) Write([]byte) (int, error)   { panic(http.ErrAbortHandler) }
func (k killConn) WriteHeader(int)             { panic(http.ErrAbortHandler) }
func (k killConn) Unwrap() http.ResponseWriter { return k.ResponseWriter }

// Satellite: the client must absorb transport failures mid-POST — both a
// connection severed after every frame was accepted (response lost) and one
// severed mid-body (prefix accepted) — by resending the identical body under
// the same Ingest-Id, and the server must skip the already-owned prefix.
// The proof is exact: the final sum equals the serial oracle and the adds
// counter equals len(xs), so not one value was double-counted or dropped.
func TestStreamResumesAcrossSeveredConnections(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	mux := s.Handler()
	var posts atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/add") {
			switch posts.Add(1) {
			case 1:
				// Accept the full body, then die before the response.
				mux.ServeHTTP(killConn{w}, r)
				return
			case 2:
				// Retry of the same body: feed the handler a truncated
				// prefix and die again. Whatever frames fit are decoded
				// (and skipped — the id already owns them).
				r.Body = io.NopCloser(io.LimitReader(r.Body, 100))
				mux.ServeHTTP(killConn{w}, r)
				return
			}
		}
		mux.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{Base: ts.URL, FrameLen: 4, ReqFrames: 8, RetryWait: time.Millisecond}
	if _, err := c.Create("acc", core.Params{}); err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(81), 64, -1, 1)
	stats, err := c.Stream("acc", xs)
	if err != nil {
		t.Fatalf("stream did not survive severed connections: %v", err)
	}
	if stats.Frames != 16 || stats.Values != len(xs) {
		t.Fatalf("stats %+v, want 16 frames / %d values", stats, len(xs))
	}
	if stats.Retries < 2 {
		t.Fatalf("stats report %d retries, want >= 2", stats.Retries)
	}
	if got := posts.Load(); got < 3 {
		t.Fatalf("%d POSTs, want >= 3 (two severed, one clean resume)", got)
	}

	info, err := c.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	if info.Adds != uint64(len(xs)) {
		t.Fatalf("adds %d, want %d: a severed connection double-counted or dropped values", info.Adds, len(xs))
	}
	if info.HP != oracleHPText(t, core.Params384, xs) {
		t.Fatalf("sum after resume diverges from oracle: %s", info.HP)
	}
}

// A connection that keeps dying past the retry budget must surface the
// transport error instead of spinning forever.
func TestTransportRetriesAreBounded(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	mux := s.Handler()
	var posts atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/add") {
			posts.Add(1)
			mux.ServeHTTP(killConn{w}, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{Base: ts.URL, FrameLen: 4, ReqFrames: 4, MaxTransportRetries: 2}
	if _, err := c.Create("acc", core.Params{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Stream("acc", rng.UniformSet(rng.New(82), 8, -1, 1))
	if err == nil {
		t.Fatal("stream succeeded against a server that never responds")
	}
	if !isTransientTransport(err) {
		t.Fatalf("surfaced error is not the transport failure: %v", err)
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("%d POSTs, want 3 (first + 2 retries)", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded retry took %s", elapsed)
	}
}

func TestTransientTransportClassifier(t *testing.T) {
	if isTransientTransport(nil) {
		t.Fatal("nil classified transient")
	}
	if isTransientTransport(io.ErrClosedPipe) {
		t.Fatal("non-transport error classified transient")
	}
	for _, err := range []error{io.EOF, io.ErrUnexpectedEOF} {
		if !isTransientTransport(err) {
			t.Fatalf("%v not classified transient", err)
		}
	}
}

func TestTransportBackoffJittered(t *testing.T) {
	for attempt := 1; attempt <= 12; attempt++ {
		d := transportBackoff(attempt)
		if d <= 0 || d > time.Second {
			t.Fatalf("attempt %d: backoff %s out of (0, 1s]", attempt, d)
		}
	}
}
