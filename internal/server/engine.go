package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// engine is one replica's summation state machine: Shards independent
// SuperAccumulators, each owned by a drain goroutine fed from a bounded
// channel. Frames are dispatched round-robin; because HP addition is exactly
// associative and commutative, the dispatch policy, queue interleaving, and
// shard count leave the merged sum bit-identical. The HTTP skin never
// touches an engine directly — an Accumulator replicates accepted frames
// across k-of-n engines and certifies that their states agree (replica.go).
type engine struct {
	name   string
	params core.Params
	cfg    Config
	shards []*shard
	next   atomic.Uint64 // round-robin dispatch cursor

	// Seed state: a restored checkpoint (or a reseed hand-off from a peer
	// replica) lands the HP value on shard 0 and carries its counters and
	// sticky error here.
	baseAdds    uint64
	baseFrames  uint64
	restoredErr error

	stopOnce sync.Once
}

// op is one unit of shard work: exactly one of xs (a float batch), hp (an
// HP partial), or snap (a flush-and-report request) is set.
type op struct {
	xs   []float64
	hp   *core.HP
	snap chan shardState
	seed bool          // restore seed: fold the value in without counting a frame
	enq  time.Time     // set when telemetry is recording; zero otherwise
	tctx trace.Context // ingest span context; folds become its children
}

// shardState is a shard's reply to a snap op: the canonical partial sum
// (cloned, caller-owned) plus its counters and sticky error.
type shardState struct {
	sum    *core.HP
	err    error
	adds   uint64
	frames uint64
}

type shard struct {
	ops  chan op
	quit chan struct{} // closed by stop(): drop queued work and exit
	done chan struct{} // closed when the drain goroutine returns
}

// engineState is an engine's merged reply to a full flush: the canonical
// merged sum (caller-owned), the counters, and the first sticky error.
type engineState struct {
	sum    *core.HP
	err    error
	adds   uint64
	frames uint64
}

func newEngine(name string, p core.Params, cfg Config) *engine {
	e := &engine{name: name, params: p, cfg: cfg}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		sh := &shard{
			ops:  make(chan op, cfg.QueueDepth),
			quit: make(chan struct{}),
			done: make(chan struct{}),
		}
		e.shards[i] = sh
		go e.drain(sh)
	}
	return e
}

// drain is the shard's owner goroutine: it applies queued operations to its
// private SuperAccumulator (the exponent-indexed frontend — the fastest
// serial fold) until the ops channel is closed (graceful close, queue fully
// applied) or quit is closed (delete, queue dropped).
func (e *engine) drain(sh *shard) {
	defer close(sh.done)
	b := core.NewSuper(e.params)
	var adds, frames uint64
	apply := func(o op) {
		switch {
		case o.snap != nil:
			sp := trace.Start(o.tctx, "server.snapshot")
			o.snap <- shardState{sum: b.Sum().Clone(), err: b.Err(), adds: adds, frames: frames}
			sp.End()
		case o.hp != nil:
			sp := trace.Start(o.tctx, "server.fold")
			sp.Attr(trace.Str("kind", "hp"))
			b.AddHP(o.hp)
			if !o.seed {
				frames++
			}
			sp.End()
		default:
			sp := trace.Start(o.tctx, "server.fold")
			sp.Attr(trace.Int("values", int64(len(o.xs))))
			b.AddSlice(o.xs)
			adds += uint64(len(o.xs))
			frames++
			sp.End()
		}
		mQueueDepth.Dec()
		if !o.enq.IsZero() {
			mDrainLatency.Observe(time.Since(o.enq).Seconds())
		}
	}
	for {
		select {
		case <-sh.quit:
			// Deleted: unblock any queued snap requests, drop the rest.
			for {
				select {
				case o := <-sh.ops:
					if o.snap != nil {
						o.snap <- shardState{err: ErrGone, sum: core.New(e.params)}
					}
					mQueueDepth.Dec()
				default:
					return
				}
			}
		case o, ok := <-sh.ops:
			if !ok {
				return
			}
			apply(o)
		}
	}
}

// stop signals every shard to exit, dropping queued work (delete semantics).
func (e *engine) stop() {
	e.stopOnce.Do(func() {
		for _, sh := range e.shards {
			close(sh.quit)
		}
	})
	for _, sh := range e.shards {
		<-sh.done
	}
}

// closeDrain closes the ops channels so the drains apply everything still
// queued and exit (graceful shutdown semantics). The caller guarantees no
// concurrent enqueues.
func (e *engine) closeDrain() {
	for _, sh := range e.shards {
		close(sh.ops)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
}

// enqueue places o on the next shard in round-robin order. With wait=false
// it is the admission gate: it waits up to EnqueueWait for room, and a
// persistently full queue is ErrBusy (backpressure). With wait=true it
// blocks until the shard has room — the replication fan-out path, where the
// frame is already admitted and must land on every active replica. A
// deleted engine is ErrGone either way.
func (e *engine) enqueue(o op, wait bool) error {
	if telemetry.Enabled() {
		o.enq = time.Now()
	}
	sh := e.shards[e.next.Add(1)%uint64(len(e.shards))]
	select {
	case <-sh.quit:
		return ErrGone
	default:
	}
	select {
	case sh.ops <- o:
		mQueueDepth.Inc()
		return nil
	default:
	}
	if wait {
		select {
		case sh.ops <- o:
			mQueueDepth.Inc()
			return nil
		case <-sh.quit:
			return ErrGone
		}
	}
	t := time.NewTimer(e.cfg.EnqueueWait)
	defer t.Stop()
	select {
	case sh.ops <- o:
		mQueueDepth.Inc()
		return nil
	case <-sh.quit:
		return ErrGone
	case <-t.C:
		mRejectedAdds.Inc()
		flight.Event("backpressure-429",
			trace.Str("acc", e.name),
			trace.Int("queue_depth", mQueueDepth.Value()),
			trace.Int("queue_cap", int64(e.cfg.QueueDepth*len(e.shards))))
		return ErrBusy
	}
}

// state flushes every shard (a snap op queues behind all previously
// accepted work, so the reply reflects every frame acked before the call)
// and merges the partials in fixed shard order through the sign-rule
// overflow check — the replica's deterministic combine point, mirroring
// omp.Reduce's MergeChecked. The merged limbs are bit-identical for every
// dispatch interleaving; only the overflow verdict depends on the combine
// trajectory, which the fixed order pins given the shard partials.
func (e *engine) state(tctx trace.Context) (engineState, error) {
	replies := make([]chan shardState, len(e.shards))
	for i, sh := range e.shards {
		ch := make(chan shardState, 1)
		select {
		case sh.ops <- op{snap: ch, tctx: tctx}:
			mQueueDepth.Inc()
		case <-sh.quit:
			return engineState{}, ErrGone
		}
		replies[i] = ch
	}
	merged := core.NewAccumulator(e.params)
	adds, frames := e.baseAdds, e.baseFrames
	firstErr := e.restoredErr
	for i, ch := range replies {
		var st shardState
		select {
		case st = <-ch:
		case <-e.shards[i].done:
			// Graceful close raced the snap: the drain applied it before
			// exiting, or dropped it via quit; try a non-blocking read.
			select {
			case st = <-ch:
			default:
				return engineState{}, ErrGone
			}
		}
		if st.err != nil && firstErr == nil {
			firstErr = st.err
		}
		merged.AddHP(st.sum)
		adds += st.adds
		frames += st.frames
	}
	if firstErr == nil {
		firstErr = merged.Err()
	}
	return engineState{sum: merged.Sum(), err: firstErr, adds: adds, frames: frames}, nil
}

// seed installs a checkpoint: the HP value lands on shard 0's queue
// (associativity makes the landing shard irrelevant) and the counters and
// sticky error are carried at the engine level. Only valid before the
// engine serves reads, or while its Accumulator holds the write lock.
func (e *engine) seed(ck *core.SumCheckpoint, frames uint64, errText string) error {
	if ck.Sum.Params() != e.params {
		return core.ErrParamMismatch
	}
	if err := e.enqueue(op{hp: ck.Sum, seed: true}, true); err != nil {
		return err
	}
	e.baseAdds = ck.Step
	e.baseFrames = frames
	if errText != "" {
		e.restoredErr = errors.New(errText)
	} else {
		e.restoredErr = nil
	}
	return nil
}
