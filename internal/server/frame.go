// Package server implements hpsumd, the order-invariant summation service:
// a registry of named HP accumulators sharded across drain goroutines,
// served over a stdlib-only HTTP wire surface with streaming binary ingest,
// admission control, and checkpoint-based snapshot/restore.
//
// The service leans entirely on the paper's central property (eq. 2):
// multi-limb two's-complement addition is exactly associative and
// commutative, so any interleaving of concurrent client batches — across
// connections, shards, and drain goroutines — produces a bit-identical
// sum. Batching, sharding, and reordering are therefore correctness-free
// design dimensions; only overflow verdicts need deterministic combine
// points (MergeChecked at snapshot/read time), mirroring omp.Reduce.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/trace"
)

// Wire format of the streaming ingest payload: a sequence of self-checking
// frames, each
//
//	type(1) | payloadLen(4, big-endian) | payload | crc32(4, big-endian)
//
// where the CRC-32 (IEEE, matching the core.SumCheckpoint convention) covers
// everything before it — header and payload. Two frame types exist:
//
//	'f' — a batch of float64 values, 8 bytes each, big-endian IEEE-754 bit
//	      patterns (the same byte order as HP limb images);
//	'h' — one core.HP partial sum in its self-describing MarshalBinary
//	      envelope, for exact hand-off of pre-reduced partials (e.g. from
//	      MPI ranks or another hpsumd);
//	'T' — an optional trace-context frame: 16 bytes of (trace id, span id),
//	      big-endian. It is metadata, not data: the server parents its
//	      ingest span under it so a frame can be followed client → shard
//	      queue → fold, but it never counts toward frames_accepted (resume
//	      arithmetic is untouched) and never touches accumulator state.
//	      Clients only send it when tracing is enabled and sampled.
//
// A frame is the unit of admission: it is either accepted whole (enqueued
// on one shard) or rejected whole, so clients can resume after backpressure
// by resending only unaccepted frames.
const (
	FrameFloat64 byte = 'f'
	FrameHP      byte = 'h'
	FrameTrace   byte = 'T'

	frameHeaderLen  = 5 // type + payload length
	frameTrailerLen = 4 // crc32
	frameOverhead   = frameHeaderLen + frameTrailerLen

	// traceFramePayloadLen is the fixed payload size of a FrameTrace:
	// traceID(8) | spanID(8).
	traceFramePayloadLen = 16
)

// MaxFramePayload is the default cap on a single frame's payload size
// (1 MiB: 128k float64 values). The decoder rejects larger length prefixes
// before allocating, so a corrupt or hostile length field cannot balloon
// memory.
const MaxFramePayload = 1 << 20

// Frame decoding errors. ErrFrameTooLarge and ErrFrameChecksum are returned
// wrapped with frame context; use errors.Is to classify.
var (
	ErrFrameTooLarge = errors.New("server: frame payload exceeds limit")
	ErrFrameChecksum = errors.New("server: frame checksum mismatch")
	ErrFrameType     = errors.New("server: unknown frame type")
	ErrFrameTrunc    = errors.New("server: truncated frame")
)

// AppendFloatFrame appends a FrameFloat64 frame holding xs to buf and
// returns the extended slice.
func AppendFloatFrame(buf []byte, xs []float64) []byte {
	start := len(buf)
	buf = append(buf, FrameFloat64)
	buf = binary.BigEndian.AppendUint32(buf, uint32(8*len(xs)))
	for _, x := range xs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// AppendHPFrame appends a FrameHP frame holding x's self-describing binary
// envelope to buf and returns the extended slice.
func AppendHPFrame(buf []byte, x *core.HP) ([]byte, error) {
	env, err := x.MarshalBinary()
	if err != nil {
		return buf, err
	}
	start := len(buf)
	buf = append(buf, FrameHP)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(env)))
	buf = append(buf, env...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// AppendTraceFrame appends a FrameTrace frame carrying ctx to buf and
// returns the extended slice. An invalid context appends nothing, so
// callers can chain it unconditionally.
func AppendTraceFrame(buf []byte, ctx trace.Context) []byte {
	if !ctx.Valid() {
		return buf
	}
	start := len(buf)
	buf = append(buf, FrameTrace)
	buf = binary.BigEndian.AppendUint32(buf, traceFramePayloadLen)
	buf = binary.BigEndian.AppendUint64(buf, ctx.TraceID)
	buf = binary.BigEndian.AppendUint64(buf, ctx.SpanID)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// Frame is one decoded ingest frame. Payload aliases the decoder's internal
// buffer and is only valid until the next call to Next.
type Frame struct {
	Type    byte
	Payload []byte
}

// Floats decodes a FrameFloat64 payload into out (reused if capacity
// allows). Non-finite values are rejected here, at admission, so a poisoned
// frame cannot wedge a named accumulator into a permanent sticky-error
// state; range errors (overflow/underflow of the HP format) remain per-
// accumulator sticky errors, as in the rest of the repo.
func (f Frame) Floats(out []float64) ([]float64, error) {
	if f.Type != FrameFloat64 {
		return nil, fmt.Errorf("server: Floats on frame type %q", f.Type)
	}
	if len(f.Payload)%8 != 0 {
		return nil, fmt.Errorf("server: float frame payload of %d bytes is not a multiple of 8", len(f.Payload))
	}
	n := len(f.Payload) / 8
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		v := math.Float64frombits(binary.BigEndian.Uint64(f.Payload[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("server: value %d in float frame: %w", i, core.ErrNotFinite)
		}
		out[i] = v
	}
	return out, nil
}

// TraceContext decodes a FrameTrace payload.
func (f Frame) TraceContext() (trace.Context, error) {
	if f.Type != FrameTrace {
		return trace.Context{}, fmt.Errorf("server: TraceContext on frame type %q", f.Type)
	}
	if len(f.Payload) != traceFramePayloadLen {
		return trace.Context{}, fmt.Errorf("server: trace frame payload of %d bytes, want %d", len(f.Payload), traceFramePayloadLen)
	}
	return trace.Context{
		TraceID: binary.BigEndian.Uint64(f.Payload),
		SpanID:  binary.BigEndian.Uint64(f.Payload[8:]),
	}, nil
}

// HP decodes a FrameHP payload into a fresh HP value.
func (f Frame) HP() (*core.HP, error) {
	if f.Type != FrameHP {
		return nil, fmt.Errorf("server: HP on frame type %q", f.Type)
	}
	var h core.HP
	if err := h.UnmarshalBinary(f.Payload); err != nil {
		return nil, err
	}
	return &h, nil
}

// FrameDecoder reads frames from a byte stream, verifying structure and
// checksum and bounding allocation by maxPayload regardless of what the
// length prefix claims.
type FrameDecoder struct {
	r          io.Reader
	maxPayload int
	buf        []byte // header+payload+trailer of the current frame
}

// NewFrameDecoder returns a decoder reading from r. maxPayload <= 0 selects
// MaxFramePayload.
func NewFrameDecoder(r io.Reader, maxPayload int) *FrameDecoder {
	if maxPayload <= 0 {
		maxPayload = MaxFramePayload
	}
	return &FrameDecoder{r: r, maxPayload: maxPayload}
}

// Next reads and verifies the next frame. It returns io.EOF at a clean
// stream end (no partial frame read), ErrFrameTrunc-wrapped errors for
// mid-frame truncation, and checksum/type/size errors for corrupt input.
// The returned Frame's payload is only valid until the following call.
func (d *FrameDecoder) Next() (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(d.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: reading type: %v", ErrFrameTrunc, err)
	}
	ftype := hdr[0]
	if ftype != FrameFloat64 && ftype != FrameHP && ftype != FrameTrace {
		return Frame{}, fmt.Errorf("%w 0x%02x", ErrFrameType, ftype)
	}
	if _, err := io.ReadFull(d.r, hdr[1:]); err != nil {
		return Frame{}, fmt.Errorf("%w: reading length: %v", ErrFrameTrunc, err)
	}
	plen := int(binary.BigEndian.Uint32(hdr[1:]))
	if plen > d.maxPayload {
		return Frame{}, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, plen, d.maxPayload)
	}
	total := frameHeaderLen + plen + frameTrailerLen
	if cap(d.buf) < total {
		d.buf = make([]byte, total)
	}
	d.buf = d.buf[:total]
	copy(d.buf, hdr[:])
	if _, err := io.ReadFull(d.r, d.buf[frameHeaderLen:]); err != nil {
		return Frame{}, fmt.Errorf("%w: reading %d payload bytes: %v", ErrFrameTrunc, plen, err)
	}
	body := d.buf[:frameHeaderLen+plen]
	stored := binary.BigEndian.Uint32(d.buf[frameHeaderLen+plen:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return Frame{}, fmt.Errorf("%w (stored %08x, computed %08x)", ErrFrameChecksum, stored, got)
	}
	return Frame{Type: ftype, Payload: body[frameHeaderLen:]}, nil
}
