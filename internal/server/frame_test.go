package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/core"
)

func TestFloatFrameRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1.5, -2.25, 1e-300, -1e300, 0.1},
		{math.Copysign(0, -1)},
	}
	for _, xs := range cases {
		buf := AppendFloatFrame(nil, xs)
		dec := NewFrameDecoder(bytes.NewReader(buf), 0)
		f, err := dec.Next()
		if err != nil {
			t.Fatalf("decode %v: %v", xs, err)
		}
		if f.Type != FrameFloat64 {
			t.Fatalf("type %q", f.Type)
		}
		got, err := f.Floats(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("got %d values, want %d", len(got), len(xs))
		}
		for i := range xs {
			if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
				t.Fatalf("value %d: %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(xs[i]))
			}
		}
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("want EOF after single frame, got %v", err)
		}
	}
}

func TestHPFrameRoundTrip(t *testing.T) {
	h, err := core.FromFloat64(core.Params384, -12345.0625)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendHPFrame(nil, h)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFrameDecoder(bytes.NewReader(buf), 0).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameHP {
		t.Fatalf("type %q", f.Type)
	}
	got, err := f.HP()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(h) {
		t.Fatalf("HP mismatch: %v vs %v", got, h)
	}
}

func TestFrameDecoderMultiple(t *testing.T) {
	var buf []byte
	buf = AppendFloatFrame(buf, []float64{1, 2, 3})
	h := core.New(core.Params128)
	var err error
	buf, err = AppendHPFrame(buf, h)
	if err != nil {
		t.Fatal(err)
	}
	buf = AppendFloatFrame(buf, []float64{4})
	dec := NewFrameDecoder(bytes.NewReader(buf), 0)
	types := []byte{}
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, f.Type)
	}
	if want := []byte{FrameFloat64, FrameHP, FrameFloat64}; !bytes.Equal(types, want) {
		t.Fatalf("types %q, want %q", types, want)
	}
}

func TestFrameDecoderRejectsCorruption(t *testing.T) {
	valid := AppendFloatFrame(nil, []float64{1.25, -7})

	t.Run("bit-flip", func(t *testing.T) {
		for pos := 0; pos < len(valid); pos++ {
			mauled := append([]byte(nil), valid...)
			mauled[pos] ^= 0x40
			_, err := NewFrameDecoder(bytes.NewReader(mauled), 0).Next()
			if err == nil {
				t.Fatalf("flip at byte %d accepted", pos)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for cut := 1; cut < len(valid); cut++ {
			_, err := NewFrameDecoder(bytes.NewReader(valid[:cut]), 0).Next()
			if err == nil || err == io.EOF {
				t.Fatalf("truncation at %d bytes: err=%v", cut, err)
			}
		}
	})
	t.Run("bad-type", func(t *testing.T) {
		mauled := append([]byte(nil), valid...)
		mauled[0] = 'z'
		_, err := NewFrameDecoder(bytes.NewReader(mauled), 0).Next()
		if !errors.Is(err, ErrFrameType) {
			t.Fatalf("err=%v, want ErrFrameType", err)
		}
	})
	t.Run("oversize-length-no-alloc", func(t *testing.T) {
		// A length prefix claiming 4 GiB must be rejected by the bound
		// check, not attempted as an allocation.
		hdr := []byte{FrameFloat64, 0xff, 0xff, 0xff, 0xf8}
		_, err := NewFrameDecoder(bytes.NewReader(hdr), 0).Next()
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err=%v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		mauled := append([]byte(nil), valid...)
		mauled[len(mauled)-1] ^= 0xff
		_, err := NewFrameDecoder(bytes.NewReader(mauled), 0).Next()
		if !errors.Is(err, ErrFrameChecksum) {
			t.Fatalf("err=%v, want ErrFrameChecksum", err)
		}
	})
}

func TestFloatsRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		// Build the frame by hand: AppendFloatFrame would happily encode it,
		// and the wire CRC is over the bit pattern, so it decodes structurally.
		buf := AppendFloatFrame(nil, []float64{1, bad})
		f, err := NewFrameDecoder(bytes.NewReader(buf), 0).Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Floats(nil); !errors.Is(err, core.ErrNotFinite) {
			t.Fatalf("%v: err=%v, want ErrNotFinite", bad, err)
		}
	}
}

func TestFrameOverheadConstant(t *testing.T) {
	buf := AppendFloatFrame(nil, []float64{1, 2, 3})
	if len(buf) != frameOverhead+3*8 {
		t.Fatalf("frame of 3 values is %d bytes, want %d", len(buf), frameOverhead+3*8)
	}
	if got := int(binary.BigEndian.Uint32(buf[1:5])); got != 24 {
		t.Fatalf("length prefix %d, want 24", got)
	}
}
