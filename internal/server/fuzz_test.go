package server

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rng"
)

// Fuzz target for the wire-frame decoder — the first thing untrusted client
// bytes hit. The seed corpus mirrors internal/core's fuzz convention: valid
// frames plus faults.CorruptBytes maulings of them, so the fuzzer starts at
// exactly the inputs a chaos run's corrupted transport would deliver.
// Invariant: every frame the decoder accepts re-encodes to the identical
// bytes (CRC included), every reject happens without a panic or an
// attacker-sized allocation, and decoding stops at the first bad frame.

func frameSeeds(f *testing.F) [][]byte {
	f.Helper()
	var encs [][]byte
	encs = append(encs,
		AppendFloatFrame(nil, nil),
		AppendFloatFrame(nil, []float64{0}),
		AppendFloatFrame(nil, []float64{1.5, -2.25, 1e300, -1e-300}),
		AppendFloatFrame(nil, []float64{math.Copysign(0, -1), math.MaxFloat64}),
	)
	for _, p := range []core.Params{core.Params128, core.Params384} {
		h, err := core.FromFloat64(p, -12.375)
		if err != nil {
			f.Fatal(err)
		}
		enc, err := AppendHPFrame(nil, h)
		if err != nil {
			f.Fatal(err)
		}
		encs = append(encs, enc)
	}
	// Multi-frame stream: corruption mid-stream must stop the decode there.
	multi := AppendFloatFrame(nil, []float64{1, 2, 3})
	multi = AppendFloatFrame(multi, []float64{4})
	encs = append(encs, multi)

	out := encs[:len(encs):len(encs)]
	r := rng.New(0xC0FFEE)
	for _, enc := range encs {
		for i := 0; i < 8; i++ {
			out = append(out, faults.CorruptBytes(r, append([]byte(nil), enc...)))
		}
		heavy := append([]byte(nil), enc...)
		for i := 0; i < 8; i++ {
			faults.CorruptBytes(r, heavy)
		}
		out = append(out, heavy)
	}
	return out
}

func FuzzFrameDecode(f *testing.F) {
	for _, seed := range frameSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewFrameDecoder(bytes.NewReader(data), 0)
		var reencoded []byte
		for {
			fr, err := dec.Next()
			if err == io.EOF {
				// Clean end: everything accepted must round-trip to the
				// exact bytes consumed (accepted frames are a prefix).
				if !bytes.Equal(reencoded, data[:len(reencoded)]) {
					t.Fatalf("re-encode differs from accepted prefix:\n %x\n %x",
						reencoded, data[:len(reencoded)])
				}
				return
			}
			if err != nil {
				return // rejected without panic: fine
			}
			switch fr.Type {
			case FrameFloat64:
				xs, err := fr.Floats(nil)
				if err != nil {
					return // non-finite payload rejected at admission
				}
				reencoded = AppendFloatFrame(reencoded, xs)
			case FrameHP:
				h, err := fr.HP()
				if err != nil {
					return
				}
				hEnc, err := AppendHPFrame(nil, h)
				if err != nil {
					t.Fatalf("accepted HP failed to re-encode: %v", err)
				}
				reencoded = append(reencoded, hEnc...)
			default:
				t.Fatalf("decoder returned undefined frame type %q", fr.Type)
			}
			// The decoder must never hand back a frame larger than its bound.
			if len(fr.Payload) > MaxFramePayload {
				t.Fatalf("payload %d exceeds bound %d", len(fr.Payload), MaxFramePayload)
			}
		}
	})
}
