package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// HTTP surface:
//
//	PUT    /v1/acc/{name}        create (optional JSON body {"n":N,"k":K})
//	GET    /v1/acc/{name}        flush + read: Info JSON (rounded sum + HP text)
//	DELETE /v1/acc/{name}        delete
//	GET    /v1/acc               list names and formats
//	POST   /v1/acc/{name}/add    streaming binary ingest (frames; see frame.go)
//	POST   /v1/sum               one-shot: frames in, Info JSON out (?n=&k=)
//
// Ingest semantics: frames are admitted one at a time; each accepted frame
// is enqueued before the next is read, so the frames_accepted count in
// every response (success or error) tells the client exactly which prefix
// of its stream the server owns. On 429 the client resends the unaccepted
// suffix — double-sending an accepted frame would double-count it, but
// re-sending an unaccepted one is always safe, and since addition is
// commutative the retry needs no ordering care.

// AddResult is the ingest response body. On errors it is embedded alongside
// an error string so clients can resume precisely.
type AddResult struct {
	FramesAccepted int    `json:"frames_accepted"`
	ValuesAccepted int    `json:"values_accepted"`
	Error          string `json:"error,omitempty"`
}

// Handler returns the service mux. Mount it alone, or alongside the
// telemetry exporter's mux on one listener as cmd/hpsumd does.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/acc/{name}", s.handleCreate)
	mux.HandleFunc("GET /v1/acc/{name}", s.handleGet)
	mux.HandleFunc("DELETE /v1/acc/{name}", s.handleDelete)
	mux.HandleFunc("GET /v1/acc", s.handleList)
	mux.HandleFunc("GET /v1/acc/{$}", s.handleList)
	mux.HandleFunc("POST /v1/acc/{name}/add", s.handleAdd)
	mux.HandleFunc("POST /v1/sum", s.handleSum)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	noteServerError(status, msg)
	writeJSON(w, status, errorBody{Error: msg})
}

// noteServerError records an escaped 5xx in the flight recorder and trips
// a dump: a server error on this service means an invariant broke (enqueue
// failed for a non-backpressure reason, marshalling a sum failed), which is
// exactly the moment the recent-event rings are worth keeping.
func noteServerError(status int, msg string) {
	if status < 500 || status == http.StatusServiceUnavailable {
		return
	}
	flight.Event("server-5xx", trace.Int("status", int64(status)), trace.Str("error", msg))
	trace.TripDump("server-5xx", fmt.Sprintf("HTTP %d: %s", status, msg))
}

type createRequest struct {
	N int `json:"n"`
	K int `json:"k"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	name := r.PathValue("name")
	var req createRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad create body: %v", err)
			return
		}
	}
	a, created, err := s.Create(name, core.Params{N: req.N, K: req.K})
	switch {
	case err == nil:
	case errors.Is(err, ErrBadName):
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrExists):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, ErrServerClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, Info{Name: a.Name(), N: a.params.N, K: a.params.K,
		Shards: a.cfg.Shards, HP: "", Sum: 0})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	a := s.Lookup(r.PathValue("name"))
	if a == nil {
		writeErr(w, http.StatusNotFound, "no accumulator %q", r.PathValue("name"))
		return
	}
	info, err := a.Certified()
	switch {
	case err == nil:
	case errors.Is(err, ErrDiverged):
		// Fail closed: never serve a value the replicas did not agree on.
		// The certification pass has already quarantined and reseeded the
		// minority, so a retry is expected to succeed.
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeErr(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	if !s.Delete(r.PathValue("name")) {
		writeErr(w, http.StatusNotFound, "no accumulator %q", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type listEntry struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	K      int    `json:"k"`
	Shards int    `json:"shards"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	names := s.Names()
	out := struct {
		Accumulators []listEntry `json:"accumulators"`
	}{Accumulators: make([]listEntry, 0, len(names))}
	for _, name := range names {
		if a := s.Lookup(name); a != nil {
			out.Accumulators = append(out.Accumulators,
				listEntry{Name: name, N: a.params.N, K: a.params.K, Shards: a.cfg.Shards})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAdd is the streaming ingest endpoint. The body is a sequence of
// binary frames; each is verified (length bound, CRC, finiteness /
// parameter checks) and enqueued whole before the next is read. A read
// deadline is re-armed before every frame so a stalled client cannot hold
// the connection; the request body is additionally capped by
// MaxRequestBytes and MaxRequestFrames.
//
// Idempotent resume: a request may carry an Ingest-Id header naming its
// frame stream. The server remembers, per accumulator, how many data frames
// each id has already been accepted for; a client whose connection died
// mid-POST — after frames were accepted but before the response could say
// so — retries with the same id and the identical body, and the server
// decodes-and-skips the already-owned prefix instead of double-counting it.
// The response's frames_accepted is always the id's total, so the resume
// arithmetic is the same as the 429 path's.
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	a := s.Lookup(r.PathValue("name"))
	if a == nil {
		writeErr(w, http.StatusNotFound, "no accumulator %q", r.PathValue("name"))
		return
	}
	ingestID := r.Header.Get("Ingest-Id")
	skip := a.resumeCount(ingestID)
	rc := http.NewResponseController(w)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := NewFrameDecoder(bufio.NewReader(body), s.cfg.MaxFramePayload)

	// Ingest span, started lazily at the first frame so a leading
	// FrameTrace can parent it under the client's send span. One span per
	// request; when tracing is off every operation below is free.
	var span trace.Span
	spanStarted := false
	ensureSpan := func(parent trace.Context) {
		if spanStarted {
			return
		}
		spanStarted = true
		if !parent.Valid() {
			parent = trace.NewTrace()
		}
		span = trace.Start(parent, "server.ingest")
		span.Attr(trace.Str("acc", a.name))
	}
	var res AddResult
	defer func() {
		span.Attr(trace.Int("frames", int64(res.FramesAccepted)))
		span.Attr(trace.Int("values", int64(res.ValuesAccepted)))
		span.End()
	}()

	fail := func(status int, format string, args ...any) {
		res.Error = fmt.Sprintf(format, args...)
		noteServerError(status, res.Error)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		writeJSON(w, status, res)
	}
	for {
		// Slow-client guard: each frame must arrive within FrameReadTimeout.
		// ErrNotSupported (e.g. an httptest.ResponseRecorder) just means no
		// deadline enforcement, which is fine for in-process use.
		if err := rc.SetReadDeadline(time.Now().Add(s.cfg.FrameReadTimeout)); err != nil &&
			!errors.Is(err, http.ErrNotSupported) {
			fail(http.StatusInternalServerError, "arming read deadline: %v", err)
			return
		}
		f, err := dec.Next()
		if err != nil {
			switch {
			case isEOF(err):
				writeJSON(w, http.StatusOK, res)
				return
			case isMaxBytes(err):
				mBadFrames.Inc()
				fail(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxRequestBytes)
				return
			case isTimeout(err):
				mBadFrames.Inc()
				fail(http.StatusRequestTimeout, "frame read stalled past %s", s.cfg.FrameReadTimeout)
				return
			case errors.Is(err, ErrFrameTooLarge):
				mBadFrames.Inc()
				fail(http.StatusRequestEntityTooLarge, "%v", err)
				return
			default:
				mBadFrames.Inc()
				fail(http.StatusBadRequest, "%v", err)
				return
			}
		}
		if res.FramesAccepted >= s.cfg.MaxRequestFrames {
			fail(http.StatusRequestEntityTooLarge,
				"more than %d frames in one request", s.cfg.MaxRequestFrames)
			return
		}
		var enqErr error
		var values int
		skipFrame := res.FramesAccepted < skip
		switch f.Type {
		case FrameTrace:
			// Metadata, not data: adopt the client's context for this
			// request's ingest span, count nothing, touch no state. The
			// resume protocol is untouched because frames_accepted only
			// ever counts data frames.
			wctx, err := f.TraceContext()
			if err != nil {
				mBadFrames.Inc()
				fail(http.StatusBadRequest, "%v", err)
				return
			}
			ensureSpan(wctx)
			continue
		case FrameHP:
			h, err := f.HP()
			if err != nil {
				mBadFrames.Inc()
				fail(http.StatusBadRequest, "%v", err)
				return
			}
			if h.Params() != a.params {
				mBadFrames.Inc()
				fail(http.StatusBadRequest, "HP frame is (N=%d,k=%d), accumulator is (N=%d,k=%d)",
					h.Params().N, h.Params().K, a.params.N, a.params.K)
				return
			}
			ensureSpan(trace.Context{})
			if !skipFrame {
				enqErr = a.AddHPTraced(h, span.Context())
			}
		default:
			xs, err := f.Floats(nil)
			if err != nil {
				mBadFrames.Inc()
				fail(http.StatusBadRequest, "%v", err)
				return
			}
			values = len(xs)
			ensureSpan(trace.Context{})
			if !skipFrame {
				enqErr = a.AddFloatsTraced(xs, span.Context())
			}
		}
		switch {
		case skipFrame && enqErr == nil:
			// Already accepted under this Ingest-Id on a previous attempt:
			// decoded (so the stream position advances) but not re-counted
			// into the sum. It still counts toward frames_accepted — that
			// number reports the id's owned prefix.
			res.FramesAccepted++
			res.ValuesAccepted += values
		case enqErr == nil:
			res.FramesAccepted++
			res.ValuesAccepted += values
			mFrames.Inc()
			mValues.Add(uint64(values))
			a.noteAccepted(ingestID, res.FramesAccepted)
		case errors.Is(enqErr, ErrBusy):
			fail(http.StatusTooManyRequests, "shard queue full; retry unaccepted frames")
			return
		case errors.Is(enqErr, ErrGone):
			fail(http.StatusGone, "accumulator deleted mid-stream")
			return
		default:
			fail(http.StatusInternalServerError, "%v", enqErr)
			return
		}
	}
}

// handleSum is the one-shot endpoint: decode every frame in the body into
// a request-local serial accumulator and return its Info. ?n=&k= select the
// format (default: the server's).
func (s *Server) handleSum(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	p := s.cfg.Params
	q := r.URL.Query()
	if q.Get("n") != "" || q.Get("k") != "" {
		n, err1 := strconv.Atoi(q.Get("n"))
		k, err2 := strconv.Atoi(q.Get("k"))
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, "bad n/k query parameters")
			return
		}
		p = core.Params{N: n, K: k}
		if err := p.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := NewFrameDecoder(bufio.NewReader(body), s.cfg.MaxFramePayload)
	b := core.NewSuper(p)
	var adds, frames uint64
	var xs []float64
	for {
		f, err := dec.Next()
		if isEOF(err) {
			break
		}
		if err != nil {
			mBadFrames.Inc()
			status := http.StatusBadRequest
			if isMaxBytes(err) || errors.Is(err, ErrFrameTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			writeErr(w, status, "%v", err)
			return
		}
		switch f.Type {
		case FrameTrace:
			continue // metadata: never counted, never summed
		case FrameHP:
			h, err := f.HP()
			if err != nil || h.Params() != p {
				mBadFrames.Inc()
				writeErr(w, http.StatusBadRequest, "bad HP frame (err=%v)", err)
				return
			}
			b.AddHP(h)
		default:
			xs, err = f.Floats(xs)
			if err != nil {
				mBadFrames.Inc()
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			b.AddSlice(xs)
			adds += uint64(len(xs))
			mValues.Add(uint64(len(xs)))
		}
		frames++
		mFrames.Inc()
	}
	sum := b.Sum()
	txt, err := sum.MarshalText()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	info := Info{N: p.N, K: p.K, Adds: adds, Frames: frames, Sum: b.Float64(), HP: string(txt)}
	if b.Err() != nil {
		info.Err = b.Err().Error()
	}
	writeJSON(w, http.StatusOK, info)
}

// isEOF reports a clean end of the frame stream (no partial frame).
func isEOF(err error) bool { return err == io.EOF }

// isMaxBytes reports that http.MaxBytesReader cut the body off.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// isTimeout reports a read-deadline expiry (net.Error with Timeout, or an
// os timeout) anywhere in the wrapped chain.
func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return os.IsTimeout(err)
}
