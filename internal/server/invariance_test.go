package server

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// The service's headline property, proved end to end: K concurrent clients
// streaming shuffled partitions of one workload over real HTTP produce a
// final accumulator bit-identical (MarshalText equal) to a serial oracle,
// for every seed, shard count, and scheduling. Run under -race in CI.

// partitions deals xs round-robin into k slices and shuffles each slice's
// internal order with its own seeded stream, so neither the partition nor
// the per-client order resembles the oracle's left-to-right pass.
func partitions(xs []float64, k int, seed uint64) [][]float64 {
	parts := make([][]float64, k)
	for i, x := range xs {
		parts[i%k] = append(parts[i%k], x)
	}
	for i := range parts {
		rng.New(seed + uint64(i)).Shuffle(parts[i])
	}
	return parts
}

func TestConcurrentClientsOrderInvariance(t *testing.T) {
	const clients = 8
	for _, seed := range []uint64{1, 20160523} {
		for _, shards := range []int{1, 4} {
			s, c := newTestServer(t, Config{Shards: shards, QueueDepth: 16})
			xs := rng.UniformSet(rng.New(seed), 40000, -0.5, 0.5)
			want := oracleText(t, s.Config().Params, xs)
			if _, err := c.Create("inv", core.Params{}); err != nil {
				t.Fatal(err)
			}
			parts := partitions(xs, clients, seed)
			var wg sync.WaitGroup
			errs := make([]error, clients)
			stats := make([]StreamStats, clients)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cl := &Client{Base: c.Base, HTTP: c.HTTP, FrameLen: 128 + 64*i,
						ReqFrames: 4 + i, RetryWait: time.Millisecond}
					stats[i], errs[i] = cl.Stream("inv", parts[i])
				}(i)
			}
			wg.Wait()
			total := 0
			for i := 0; i < clients; i++ {
				if errs[i] != nil {
					t.Fatalf("seed=%d shards=%d client %d: %v", seed, shards, i, errs[i])
				}
				total += stats[i].Values
			}
			if total != len(xs) {
				t.Fatalf("seed=%d: acked %d values, want %d", seed, total, len(xs))
			}
			info, err := c.Get("inv")
			if err != nil {
				t.Fatal(err)
			}
			if info.HP != want {
				t.Fatalf("seed=%d shards=%d:\n server %s\n oracle %s", seed, shards, info.HP, want)
			}
			if info.Err != "" {
				t.Fatalf("sticky error %q", info.Err)
			}
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")

	s1 := New(Config{Shards: 3})
	xs := rng.UniformSet(rng.New(5), 10000, -0.5, 0.5)
	a, _, err := s1.Create("keep", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(xs); off += 1000 {
		chunk := append([]float64(nil), xs[off:off+1000]...)
		if err := a.AddFloats(chunk); err != nil {
			t.Fatal(err)
		}
	}
	// A second accumulator with a different format and a sticky error.
	b, _, err := s1.Create("small", core.Params128)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloats([]float64{2, 1e-30}); err != nil {
		t.Fatal(err)
	}
	before, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	beforeSmall, err := b.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Restart: restore must reproduce the exact limbs, counters, formats,
	// and the sticky error.
	s2 := New(Config{Shards: 7}) // different shard count on purpose
	n, err := s2.Restore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n != 2 {
		t.Fatalf("restored %d accumulators, want 2", n)
	}
	after, err := s2.Lookup("keep").State()
	if err != nil {
		t.Fatal(err)
	}
	if after.HP != before.HP {
		t.Fatalf("restored limbs differ:\n before %s\n  after %s", before.HP, after.HP)
	}
	if after.Adds != before.Adds {
		t.Fatalf("adds %d, want %d", after.Adds, before.Adds)
	}
	if after.Frames != before.Frames {
		t.Fatalf("frames %d, want %d", after.Frames, before.Frames)
	}
	afterSmall, err := s2.Lookup("small").State()
	if err != nil {
		t.Fatal(err)
	}
	if afterSmall.HP != beforeSmall.HP || afterSmall.N != 2 {
		t.Fatalf("small: %+v vs %+v", afterSmall, beforeSmall)
	}
	if afterSmall.Err != beforeSmall.Err || afterSmall.Err == "" {
		t.Fatalf("sticky error lost: %q vs %q", afterSmall.Err, beforeSmall.Err)
	}

	// The restored accumulator continues the same exact trajectory: adding
	// the same tail to the oracle and to the restored server agree.
	tail := rng.UniformSet(rng.New(6), 3000, -0.5, 0.5)
	tcopy := append([]float64(nil), tail...)
	if err := s2.Lookup("keep").AddFloats(tcopy); err != nil {
		t.Fatal(err)
	}
	final, err := s2.Lookup("keep").State()
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleText(t, core.Params384, append(append([]float64(nil), xs...), tail...)); final.HP != want {
		t.Fatalf("post-restore trajectory diverged:\n server %s\n oracle %s", final.HP, want)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	s := New(Config{Shards: 1})
	if _, _, err := s.Create("x", core.Params{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos++ {
		mauled := append([]byte(nil), data...)
		mauled[pos] ^= 0x20
		if _, err := parseSnapshot(mauled); err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := parseSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDeleteUnderLoadIsClean(t *testing.T) {
	// Deleting an accumulator while clients stream into it must end every
	// request with a clean status (accepted, 404, or 410) and leak nothing;
	// the race detector guards the shard teardown.
	_, c := newTestServer(t, Config{Shards: 2, QueueDepth: 4})
	if _, err := c.Create("doomed", core.Params{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{Base: c.Base, HTTP: c.HTTP, FrameLen: 16, RetryWait: time.Millisecond, MaxRetries: 3}
			xs := rng.UniformSet(rng.New(uint64(i)), 2000, -1, 1)
			_, _ = cl.Stream("doomed", xs) // errors expected once deleted
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	c.Delete("doomed")
	wg.Wait()
}
