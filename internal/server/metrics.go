package server

import "repro/internal/telemetry"

// Service metrics, registered on the process-wide telemetry registry so the
// daemon's /metrics endpoint covers the service for free, alongside the
// core/omp/mpi hot-path counters. All recording is gated by
// telemetry.Enabled() and never touches accumulator state.
var (
	mRequests = telemetry.NewCounter("server_requests_total",
		"HTTP requests handled by the summation service (all endpoints).")
	mFrames = telemetry.NewCounter("server_frames_total",
		"Ingest frames accepted and enqueued onto a shard.")
	mValues = telemetry.NewCounter("server_values_total",
		"Float64 values accepted through ingest frames.")
	mBadFrames = telemetry.NewCounter("server_bad_frames_total",
		"Ingest frames rejected for structural reasons: truncation, checksum mismatch, bad type, oversize, non-finite values, or parameter mismatch.")
	mRejectedAdds = telemetry.NewCounter("server_rejected_adds_total",
		"Frames refused with 429 because the target shard queue stayed full past the enqueue wait (backpressure).")
	mQueueDepth = telemetry.NewGauge("server_queue_depth",
		"Ingest operations currently enqueued across all shards of all accumulators.")
	mDrainLatency = telemetry.NewHistogram("server_drain_latency_seconds",
		"Time from frame enqueue to the shard drain goroutine finishing its accumulation.",
		telemetry.DurationBuckets())
	mAccumulators = telemetry.NewGauge("server_accumulators",
		"Named accumulators currently registered.")
	mSnapshots = telemetry.NewCounter("server_snapshots_total",
		"Snapshot files written (graceful shutdowns or explicit saves).")
	mRestores = telemetry.NewCounter("server_restores_total",
		"Accumulators restored from a snapshot file at startup.")
	mCertReads = telemetry.NewCounter("server_certified_reads_total",
		"Reads served through the k-of-n certification path (including 503 divergence rejections).")
	mReplicaDivergence = telemetry.NewCounter("server_replica_divergence_total",
		"Replica state reports that disagreed with the quorum at a certification cut (one per divergent replica, plus one per failed-quorum cut).")
	mReseeds = telemetry.NewCounter("server_replica_reseeds_total",
		"Divergent replicas repaired by a synchronous reseed from the agreed state (first strike).")
	mQuarantines = telemetry.NewCounter("server_replica_quarantines_total",
		"Replicas quarantined permanently after diverging again post-reseed (second strike).")
	mAuditRecords = telemetry.NewCounter("server_audit_records_total",
		"Hash-linked audit records appended (periodic and shutdown snapshots).")
	mJournalFrames = telemetry.NewCounter("server_journal_frames_total",
		"Accepted ingest frames recorded in the audit frame journal.")
)
