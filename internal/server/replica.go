package server

import (
	"encoding/hex"
	"fmt"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/trace"
)

// Replication model. Every accepted frame is folded into n independent
// engines. Because HP addition is exactly associative and commutative,
// honest replicas fed the same accepted frames hold bit-identical canonical
// sums — there is no tolerance window, no "close enough": a replica either
// matches the quorum byte for byte or it is wrong. Certification exploits
// that binary property: hash each replica's canonical envelope, group by
// digest, and require at least k (quorum) identical votes.
//
// A minority replica is presumed faulty (bit rot, a bad fold, an injected
// lie): it is quarantined and synchronously reseeded from the agreed state
// via the exact HP hand-off, after which an honest replica converges
// byte-identically. A replica that diverges again after a reseed is
// quarantined permanently — it keeps strike state across repairs precisely
// so an equivocating replica cannot oscillate forever. If the active set
// can no longer form a quorum, every read fails closed.

type replicaStatus uint8

const (
	replicaActive      replicaStatus = iota
	replicaQuarantined               // permanent: struck out after a reseed
)

// replica is one engine plus its disciplinary record.
type replica struct {
	id      int
	eng     *engine
	status  replicaStatus
	strikes int
}

// ReplicaShare is one replica's vote in a certificate: the SHA-256 digest
// of its reported canonical HP envelope.
type ReplicaShare struct {
	Replica int    `json:"replica"`
	Digest  string `json:"digest"`
}

// Certificate is the k-of-n agreement a read was served under: every share
// whose digest equals Digest vouched for the returned value. Verify checks
// it against the served HP text client-side.
type Certificate struct {
	Acc    string         `json:"acc"`
	K      int            `json:"k"`
	N      int            `json:"n"`
	Frames uint64         `json:"frames"`
	Adds   uint64         `json:"adds"`
	Digest string         `json:"digest"`
	Shares []ReplicaShare `json:"shares"`
}

// Verify checks the certificate against the served canonical HP text: the
// agreed digest must hash the exact envelope the text decodes to, and at
// least K shares must carry that digest. It returns nil only for a
// certificate that actually vouches for the value in hand.
func (c *Certificate) Verify(hpText string) error {
	var h core.HP
	if err := h.UnmarshalText([]byte(hpText)); err != nil {
		return fmt.Errorf("server: certificate: undecodable hp text: %w", err)
	}
	env, err := h.MarshalBinary()
	if err != nil {
		return err
	}
	d := audit.DigestEnv(env)
	if got := hex.EncodeToString(d[:]); got != c.Digest {
		return fmt.Errorf("server: certificate digest %s does not cover the served value (its digest is %s)", c.Digest, got)
	}
	votes := 0
	for _, sh := range c.Shares {
		if sh.Digest == c.Digest {
			votes++
		}
	}
	if votes < c.K {
		return fmt.Errorf("server: certificate has %d agreeing shares, quorum is %d", votes, c.K)
	}
	return nil
}

// report is one replica's certified flush: its engine state plus the
// (possibly fault-injected) envelope it reported and that envelope's digest.
type report struct {
	r      *replica
	st     engineState
	env    []byte
	digest [audit.HashLen]byte
}

// agree is the certification core. Caller holds a.mu exclusively, which
// quiesces ingest: every accepted frame has landed on every active replica,
// so honest replicas answer identically.
//
// It flushes each active replica, groups the reports by envelope digest,
// and picks the largest group as the quorum candidate. With a quorum:
// minority replicas are quarantined and reseeded (or struck out), and agree
// returns the agreed state — decoded from the agreed envelope, so the
// served value is the certified bytes by construction — plus the
// certificate and the minority ids. Without a quorum nothing is
// quarantined (there is no majority to trust) and the error wraps
// ErrDiverged.
func (a *Accumulator) agree() (engineState, *Certificate, []int, error) {
	mergeSpan := trace.StartRoot("server.merge")
	mergeSpan.Attr(trace.Str("acc", a.name))
	mergeSpan.Attr(trace.Int("shards", int64(len(a.replicas[0].eng.shards))))
	mergeSpan.Attr(trace.Int("replicas", int64(len(a.replicas))))
	defer mergeSpan.End()

	actives := a.active()
	if len(actives) < a.cfg.Quorum {
		return engineState{}, nil, nil, fmt.Errorf("%w: %d active replicas cannot form a quorum of %d",
			ErrDiverged, len(actives), a.cfg.Quorum)
	}
	reports := make([]report, 0, len(actives))
	for _, r := range actives {
		st, err := r.eng.state(mergeSpan.Context())
		if err != nil {
			return engineState{}, nil, nil, err
		}
		env, err := st.sum.MarshalBinary()
		if err != nil {
			return engineState{}, nil, nil, err
		}
		if a.cfg.ReportHook != nil {
			env = a.cfg.ReportHook(r.id, env)
		}
		reports = append(reports, report{r: r, st: st, env: env, digest: audit.DigestEnv(env)})
	}

	// Largest digest group wins; first-seen order breaks ties, so the
	// outcome is deterministic in replica order.
	counts := make(map[[audit.HashLen]byte]int, len(reports))
	for _, rep := range reports {
		counts[rep.digest]++
	}
	var winner [audit.HashLen]byte
	best := 0
	for _, rep := range reports {
		if n := counts[rep.digest]; n > best {
			best, winner = n, rep.digest
		}
	}

	cert := &Certificate{
		Acc: a.name, K: a.cfg.Quorum, N: len(a.replicas),
		Digest: hex.EncodeToString(winner[:]),
		Shares: make([]ReplicaShare, 0, len(reports)),
	}
	for _, rep := range reports {
		cert.Shares = append(cert.Shares,
			ReplicaShare{Replica: rep.r.id, Digest: hex.EncodeToString(rep.digest[:])})
	}

	if best < a.cfg.Quorum {
		mReplicaDivergence.Inc()
		flight.Event("replica-no-quorum",
			trace.Str("acc", a.name),
			trace.Int("largest_group", int64(best)),
			trace.Int("quorum", int64(a.cfg.Quorum)))
		trace.TripDump("replica-divergence",
			fmt.Sprintf("acc %q: largest agreement group is %d of %d, quorum is %d",
				a.name, best, len(reports), a.cfg.Quorum))
		return engineState{}, nil, nil, fmt.Errorf("%w: largest agreement group is %d of %d replicas, quorum is %d",
			ErrDiverged, best, len(reports), a.cfg.Quorum)
	}

	// The agreed state: counters and sticky error from a majority replica's
	// engine, the value decoded from the agreed envelope itself so the
	// served bytes are exactly what the certificate's digest covers.
	var agreed engineState
	for _, rep := range reports {
		if rep.digest == winner {
			var h core.HP
			if err := h.UnmarshalBinary(rep.env); err != nil {
				return engineState{}, nil, nil, fmt.Errorf("server: agreed envelope undecodable: %w", err)
			}
			agreed = engineState{sum: &h, err: rep.st.err, adds: rep.st.adds, frames: rep.st.frames}
			break
		}
	}
	cert.Frames, cert.Adds = agreed.frames, agreed.adds

	var divergent []int
	for _, rep := range reports {
		if rep.digest != winner {
			divergent = append(divergent, rep.r.id)
			a.punish(rep, agreed, winner)
		}
	}
	return agreed, cert, divergent, nil
}

// punish quarantines a minority replica. First strike: the replica is
// synchronously reseeded from the agreed state (exact HP hand-off), after
// which an honest-but-corrupted replica is byte-identical to the quorum
// again. Second strike: the replica lied again after a repair — it is
// quarantined permanently and its engine stopped. Caller holds a.mu
// exclusively.
func (a *Accumulator) punish(rep report, agreed engineState, winner [audit.HashLen]byte) {
	r := rep.r
	r.strikes++
	mReplicaDivergence.Inc()
	flight.Event("replica-divergence",
		trace.Str("acc", a.name),
		trace.Int("replica", int64(r.id)),
		trace.Int("strike", int64(r.strikes)),
		trace.Str("agreed_digest", hex.EncodeToString(winner[:8])),
		trace.Str("minority_digest", hex.EncodeToString(rep.digest[:8])))
	trace.TripDump("replica-divergence",
		fmt.Sprintf("acc %q: replica %d diverged from the quorum (strike %d): agreed %x, reported %x",
			a.name, r.id, r.strikes, winner[:8], rep.digest[:8]))
	if r.strikes >= 2 {
		r.status = replicaQuarantined
		r.eng.stop()
		mQuarantines.Inc()
		return
	}
	errText := ""
	if agreed.err != nil {
		errText = agreed.err.Error()
	}
	fresh := newEngine(a.name, a.params, a.cfg)
	ck := &core.SumCheckpoint{Step: agreed.adds, Sum: agreed.sum.Clone()}
	if err := fresh.seed(ck, agreed.frames, errText); err != nil {
		// Seeding a fresh, empty engine cannot fail structurally; if it
		// somehow does, strike the replica out rather than serve from it.
		fresh.stop()
		r.status = replicaQuarantined
		r.eng.stop()
		mQuarantines.Inc()
		return
	}
	old := r.eng
	r.eng = fresh
	old.stop()
	mReseeds.Inc()
}
