package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rng"
)

// oracleHPText is the serial reference sum's canonical text.
func oracleHPText(t *testing.T, p core.Params, xs []float64) string {
	t.Helper()
	b := core.NewBatch(p)
	b.AddSlice(xs)
	txt, err := b.Sum().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	return string(txt)
}

func feedFloats(t *testing.T, a *Accumulator, xs []float64, frameLen int) {
	t.Helper()
	for off := 0; off < len(xs); off += frameLen {
		end := min(off+frameLen, len(xs))
		frame := append([]float64(nil), xs[off:end]...)
		if err := a.AddFloats(frame); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCertifiedCleanAgreement(t *testing.T) {
	s := New(Config{Shards: 2, Replicas: 3, Quorum: 2})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(21), 2000, -1, 1)
	feedFloats(t, a, xs, 128)

	info, err := a.Certified()
	if err != nil {
		t.Fatal(err)
	}
	if info.HP != oracleHPText(t, core.Params384, xs) {
		t.Fatalf("certified sum diverges from oracle: %s", info.HP)
	}
	cert := info.Cert
	if cert == nil {
		t.Fatal("certified read returned no certificate")
	}
	if cert.K != 2 || cert.N != 3 || len(cert.Shares) != 3 {
		t.Fatalf("certificate shape: %+v", cert)
	}
	for _, sh := range cert.Shares {
		if sh.Digest != cert.Digest {
			t.Fatalf("replica %d digest differs in a clean run", sh.Replica)
		}
	}
	if err := cert.Verify(info.HP); err != nil {
		t.Fatalf("certificate does not verify its own value: %v", err)
	}
	if cert.Frames != info.Frames || cert.Adds != info.Adds {
		t.Fatalf("certificate counters %d/%d, info %d/%d", cert.Frames, cert.Adds, info.Frames, info.Adds)
	}
}

// A replica that lies once: the read fails closed, the liar is reseeded,
// and the next read serves the correct value under a full certificate.
func TestLyingReplicaFailsClosedThenHeals(t *testing.T) {
	plan, err := faults.ParseReplicaPlan("seed=42;lie:replica=1,limit=1")
	if err != nil {
		t.Fatal(err)
	}
	ri := plan.NewReplicaInjector()
	s := New(Config{Shards: 2, Replicas: 3, Quorum: 2, ReportHook: ri.OnReport})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(22), 1000, -1, 1)
	feedFloats(t, a, xs, 100)

	want := oracleHPText(t, core.Params384, xs)
	_, err = a.Certified()
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("lying replica did not fail the read closed: %v", err)
	}
	// The divergence pass quarantined and reseeded replica 1; the lie rule
	// is spent (limit=1), so the healed replica now answers honestly.
	info, err := a.Certified()
	if err != nil {
		t.Fatalf("read after reseed: %v", err)
	}
	if info.HP != want {
		t.Fatalf("served value wrong after heal: %s", info.HP)
	}
	if err := info.Cert.Verify(info.HP); err != nil {
		t.Fatal(err)
	}
	// New frames fold into the reseeded replica too: it converged
	// byte-identically and keeps tracking.
	tail := rng.UniformSet(rng.New(23), 500, -1, 1)
	feedFloats(t, a, tail, 100)
	info, err = a.Certified()
	if err != nil {
		t.Fatal(err)
	}
	if info.HP != oracleHPText(t, core.Params384, append(append([]float64(nil), xs...), tail...)) {
		t.Fatal("reseeded replica broke the trajectory")
	}
}

// An equivocating replica lies again after its reseed: second strike, and
// it is quarantined permanently. The remaining 2-of-3 quorum keeps serving.
func TestEquivocatingReplicaStruckOut(t *testing.T) {
	plan, err := faults.ParseReplicaPlan("seed=7;equivocate:replica=0")
	if err != nil {
		t.Fatal(err)
	}
	ri := plan.NewReplicaInjector()
	s := New(Config{Shards: 1, Replicas: 3, Quorum: 2, ReportHook: ri.OnReport})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(24), 800, -1, 1)
	feedFloats(t, a, xs, 80)
	want := oracleHPText(t, core.Params384, xs)

	// The equivocator corrupts alternating reports. Drive reads until it
	// has struck out; no read may ever serve a wrong value.
	sawDivergence := 0
	for i := 0; i < 6; i++ {
		info, err := a.Certified()
		if errors.Is(err, ErrDiverged) {
			sawDivergence++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if info.HP != want {
			t.Fatalf("read %d served a wrong value: %s", i, info.HP)
		}
	}
	if sawDivergence == 0 {
		t.Fatal("equivocating replica never tripped a divergence")
	}
	a.mu.Lock()
	status := a.replicas[0].status
	actives := len(a.active())
	a.mu.Unlock()
	if status != replicaQuarantined {
		t.Fatalf("equivocating replica not permanently quarantined (strikes=%d)", a.replicas[0].strikes)
	}
	if actives != 2 {
		t.Fatalf("%d active replicas, want 2", actives)
	}
	// 2-of-3 still meets quorum: reads keep working, certificates carry
	// only the surviving shares.
	info, err := a.Certified()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Cert.Shares) != 2 || info.Cert.N != 3 {
		t.Fatalf("post-quarantine certificate: %+v", info.Cert)
	}
	if err := info.Cert.Verify(info.HP); err != nil {
		t.Fatal(err)
	}
}

// A replica replaying frozen stale state is a minority against the live
// quorum and gets quarantined like any liar.
func TestReplayReplicaQuarantined(t *testing.T) {
	plan, err := faults.ParseReplicaPlan("seed=3;replay:replica=2,after=1")
	if err != nil {
		t.Fatal(err)
	}
	ri := plan.NewReplicaInjector()
	s := New(Config{Shards: 1, Replicas: 3, Quorum: 2, ReportHook: ri.OnReport})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(31), 400, -1, 1)
	feedFloats(t, a, xs, 50)
	// Report 0 is before the replay window: honest, read succeeds.
	if _, err := a.Certified(); err != nil {
		t.Fatal(err)
	}
	// Report 1 opens the window: the injector freezes replica 2's current
	// state but still answers honestly.
	if _, err := a.Certified(); err != nil {
		t.Fatal(err)
	}
	// New frames advance the quorum; replica 2 now replays its frozen
	// pre-tail state and must be caught.
	tail := rng.UniformSet(rng.New(32), 400, -1, 1)
	feedFloats(t, a, tail, 50)
	if _, err := a.Certified(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("stale replay not caught: %v", err)
	}
	// The reseed does not help: the injector keeps replaying the frozen
	// state, so the replica strikes out permanently...
	if _, err := a.Certified(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("second replay not caught: %v", err)
	}
	// ...and the surviving 2-of-3 quorum serves the right value.
	info, err := a.Certified()
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]float64(nil), xs...), tail...)
	if info.HP != oracleHPText(t, core.Params384, all) {
		t.Fatalf("post-replay value wrong: %s", info.HP)
	}
	a.mu.Lock()
	status := a.replicas[2].status
	a.mu.Unlock()
	if status != replicaQuarantined {
		t.Fatal("replaying replica not permanently quarantined")
	}
}

// With no quorum (every replica reporting something different) reads fail
// closed and nobody is quarantined — there is no majority to trust.
func TestNoQuorumFailsClosedWithoutQuarantine(t *testing.T) {
	src := rng.New(5)
	hook := func(replica int, env []byte) []byte {
		if replica == 0 {
			return env // one honest voice is not a quorum of 2
		}
		return faults.CorruptBytes(src, append([]byte(nil), env...))
	}
	s := New(Config{Shards: 1, Replicas: 3, Quorum: 2, ReportHook: hook})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	feedFloats(t, a, rng.UniformSet(rng.New(6), 100, -1, 1), 50)
	if _, err := a.Certified(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("no-quorum read did not fail closed: %v", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.replicas {
		if r.status != replicaActive || r.strikes != 0 {
			t.Fatalf("replica %d punished without a quorum to judge it (strikes=%d)", r.id, r.strikes)
		}
	}
}

// Satellite: 8 concurrent writers with interleaved certified reads under
// the race detector. Every certificate must be internally consistent (its
// digest covers the exact served envelope, with a full quorum of shares),
// and the final certified sum must be the exact oracle sum of everything
// written.
func TestConcurrentWritersWithCertifiedReads(t *testing.T) {
	const writers = 8
	s := New(Config{Shards: 2, Replicas: 3, Quorum: 2, QueueDepth: 1 << 12})
	defer s.Close()
	a, _, err := s.Create("acc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]float64, writers)
	for w := range parts {
		parts[w] = rng.UniformSet(rng.New(uint64(100+w)), 3000, -1, 1)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(xs []float64) {
			defer wg.Done()
			for off := 0; off < len(xs); off += 250 {
				end := min(off+250, len(xs))
				frame := append([]float64(nil), xs[off:end]...)
				if err := a.AddFloats(frame); err != nil {
					errs <- fmt.Errorf("writer: %w", err)
					return
				}
			}
		}(parts[w])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			info, err := a.Certified()
			if err != nil {
				errs <- fmt.Errorf("certified read %d: %w", i, err)
				return
			}
			if info.Cert == nil {
				errs <- fmt.Errorf("read %d: no certificate", i)
				return
			}
			if err := info.Cert.Verify(info.HP); err != nil {
				errs <- fmt.Errorf("read %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var all []float64
	for _, p := range parts {
		all = append(all, p...)
	}
	info, err := a.Certified()
	if err != nil {
		t.Fatal(err)
	}
	if info.HP != oracleHPText(t, core.Params384, all) {
		t.Fatalf("final certified sum diverges from oracle:\n server %s", info.HP)
	}
	if info.Adds != uint64(len(all)) {
		t.Fatalf("adds %d, want %d", info.Adds, len(all))
	}
}
