package server

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// flight is the server's flight-recorder ring: backpressure rejections,
// escaped 5xx responses, and snapshot/restore milestones land here. Always
// on, but written only from cold paths.
var flight = trace.Subsystem("server")

// Config tunes a summation Server. The zero value selects the documented
// defaults; New normalizes it.
type Config struct {
	// Params is the default HP format for accumulators created without an
	// explicit format. Defaults to core.Params384.
	Params core.Params
	// Shards is the number of independent drain lanes per accumulator.
	// Defaults to GOMAXPROCS; associativity makes the count invisible in
	// the sums, so it only trades contention for goroutines.
	Shards int
	// QueueDepth bounds each shard's pending-operation channel; a full
	// queue is the backpressure signal. Defaults to 256.
	QueueDepth int
	// EnqueueWait is how long an ingest waits for queue room before giving
	// up with a busy error (HTTP 429). Defaults to 5ms.
	EnqueueWait time.Duration
	// MaxFramePayload caps a single frame's payload bytes (default
	// MaxFramePayload); MaxRequestBytes caps one request body (default
	// 64 MiB); MaxRequestFrames caps frames per request (default 65536).
	MaxFramePayload  int
	MaxRequestBytes  int64
	MaxRequestFrames int
	// FrameReadTimeout is the per-frame read deadline on streaming ingest:
	// a client that stalls mid-frame longer than this is cut off with 408
	// rather than holding a connection open. Defaults to 10s.
	FrameReadTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses. Defaults
	// to 1s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Params == (core.Params{}) {
		c.Params = core.Params384
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.EnqueueWait <= 0 {
		c.EnqueueWait = 5 * time.Millisecond
	}
	if c.MaxFramePayload <= 0 {
		c.MaxFramePayload = MaxFramePayload
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.MaxRequestFrames <= 0 {
		c.MaxRequestFrames = 1 << 16
	}
	if c.FrameReadTimeout <= 0 {
		c.FrameReadTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Sentinel errors surfaced by the registry and mapped onto HTTP statuses by
// the handler layer.
var (
	ErrBusy         = errors.New("server: shard queue full")
	ErrGone         = errors.New("server: accumulator deleted")
	ErrNotFound     = errors.New("server: no such accumulator")
	ErrExists       = errors.New("server: accumulator exists with different parameters")
	ErrBadName      = errors.New("server: invalid accumulator name")
	ErrServerClosed = errors.New("server: closed")
)

// Server is the sharded registry of named accumulators. Create it with New,
// serve it with Handler, and stop it with Close — only after the HTTP layer
// has stopped delivering requests (hpsumd orders http.Server.Shutdown
// before Close; tests must do the same).
type Server struct {
	cfg    Config
	mu     sync.RWMutex
	accs   map[string]*Accumulator
	closed bool
}

// New returns an empty server with cfg normalized to its defaults.
func New(cfg Config) *Server {
	return &Server{cfg: cfg.withDefaults(), accs: make(map[string]*Accumulator)}
}

// Config returns the normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// validName reports whether name is acceptable: 1-128 bytes of
// [a-zA-Z0-9._-], so names embed safely in URL paths and snapshot files.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Create registers an accumulator under name with format p (zero Params
// selects the server default). It returns the accumulator and whether it
// was newly created; asking for an existing name with a different format is
// ErrExists.
func (s *Server) Create(name string, p core.Params) (*Accumulator, bool, error) {
	if !validName(name) {
		return nil, false, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if p == (core.Params{}) {
		p = s.cfg.Params
	}
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrServerClosed
	}
	if a, ok := s.accs[name]; ok {
		if a.params != p {
			return nil, false, fmt.Errorf("%w: %q is (N=%d,k=%d), requested (N=%d,k=%d)",
				ErrExists, name, a.params.N, a.params.K, p.N, p.K)
		}
		return a, false, nil
	}
	a := newAccumulator(name, p, s.cfg)
	s.accs[name] = a
	mAccumulators.Set(int64(len(s.accs)))
	return a, true, nil
}

// Lookup returns the accumulator registered under name, or nil.
func (s *Server) Lookup(name string) *Accumulator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.accs[name]
}

// Delete unregisters name and signals its drain goroutines to stop,
// dropping any queued operations. It reports whether the name existed.
func (s *Server) Delete(name string) bool {
	s.mu.Lock()
	a, ok := s.accs[name]
	if ok {
		delete(s.accs, name)
		mAccumulators.Set(int64(len(s.accs)))
	}
	s.mu.Unlock()
	if ok {
		a.stop()
	}
	return ok
}

// Names returns the registered accumulator names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.accs))
	for name := range s.accs {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Close drains every shard queue and stops the drain goroutines. It must
// only be called once no more requests are being delivered (after HTTP
// shutdown): queued work is fully applied, then the goroutines exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	accs := make([]*Accumulator, 0, len(s.accs))
	for _, a := range s.accs {
		accs = append(accs, a)
	}
	s.mu.Unlock()
	for _, a := range accs {
		a.closeDrain()
	}
}

// Info is the JSON description of one accumulator, as served by the read
// endpoints. HP is the canonical MarshalText certificate: two sums are
// bit-identical iff these strings are byte-equal.
type Info struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	K      int     `json:"k"`
	Shards int     `json:"shards,omitempty"`
	Adds   uint64  `json:"adds"`
	Frames uint64  `json:"frames"`
	Sum    float64 `json:"sum"`
	HP     string  `json:"hp"`
	Err    string  `json:"error,omitempty"`
}

// op is one unit of shard work: exactly one of xs (a float batch), hp (an
// HP partial), or snap (a flush-and-report request) is set.
type op struct {
	xs   []float64
	hp   *core.HP
	snap chan shardState
	seed bool          // restore seed: fold the value in without counting a frame
	enq  time.Time     // set when telemetry is recording; zero otherwise
	tctx trace.Context // ingest span context; folds become its children
}

// shardState is a shard's reply to a snap op: the canonical partial sum
// (cloned, caller-owned) plus its counters and sticky error.
type shardState struct {
	sum    *core.HP
	err    error
	adds   uint64
	frames uint64
}

type shard struct {
	ops  chan op
	quit chan struct{} // closed by stop(): drop queued work and exit
	done chan struct{} // closed when the drain goroutine returns
}

// Accumulator is one named, sharded accumulator: Shards independent
// BatchAccumulators, each owned by a drain goroutine fed from a bounded
// channel. Frames are dispatched round-robin; because HP addition is
// exactly associative and commutative, the dispatch policy, queue
// interleaving, and shard count leave the merged sum bit-identical.
type Accumulator struct {
	name   string
	params core.Params
	cfg    Config
	shards []*shard
	next   atomic.Uint64 // round-robin dispatch cursor

	// Restore state: a snapshot reloaded at startup seeds shard 0 with the
	// checkpointed HP value; the counters and sticky error it carried are
	// folded into state() from here.
	baseAdds    uint64
	baseFrames  uint64
	restoredErr error

	stopOnce sync.Once
}

func newAccumulator(name string, p core.Params, cfg Config) *Accumulator {
	a := &Accumulator{name: name, params: p, cfg: cfg}
	a.shards = make([]*shard, cfg.Shards)
	for i := range a.shards {
		sh := &shard{
			ops:  make(chan op, cfg.QueueDepth),
			quit: make(chan struct{}),
			done: make(chan struct{}),
		}
		a.shards[i] = sh
		go a.drain(sh)
	}
	return a
}

// Name returns the accumulator's registry name.
func (a *Accumulator) Name() string { return a.name }

// Params returns the accumulator's HP format.
func (a *Accumulator) Params() core.Params { return a.params }

// drain is the shard's owner goroutine: it applies queued operations to its
// private BatchAccumulator until the ops channel is closed (graceful close,
// queue fully applied) or quit is closed (delete, queue dropped).
func (a *Accumulator) drain(sh *shard) {
	defer close(sh.done)
	b := core.NewBatch(a.params)
	var adds, frames uint64
	apply := func(o op) {
		switch {
		case o.snap != nil:
			sp := trace.Start(o.tctx, "server.snapshot")
			b.Normalize()
			o.snap <- shardState{sum: b.Sum().Clone(), err: b.Err(), adds: adds, frames: frames}
			sp.End()
		case o.hp != nil:
			sp := trace.Start(o.tctx, "server.fold")
			sp.Attr(trace.Str("kind", "hp"))
			b.AddHP(o.hp)
			if !o.seed {
				frames++
			}
			sp.End()
		default:
			sp := trace.Start(o.tctx, "server.fold")
			sp.Attr(trace.Int("values", int64(len(o.xs))))
			b.AddSlice(o.xs)
			adds += uint64(len(o.xs))
			frames++
			sp.End()
		}
		mQueueDepth.Dec()
		if !o.enq.IsZero() {
			mDrainLatency.Observe(time.Since(o.enq).Seconds())
		}
	}
	for {
		select {
		case <-sh.quit:
			// Deleted: unblock any queued snap requests, drop the rest.
			for {
				select {
				case o := <-sh.ops:
					if o.snap != nil {
						o.snap <- shardState{err: ErrGone, sum: core.New(a.params)}
					}
					mQueueDepth.Dec()
				default:
					return
				}
			}
		case o, ok := <-sh.ops:
			if !ok {
				return
			}
			apply(o)
		}
	}
}

// stop signals every shard to exit, dropping queued work (delete semantics).
func (a *Accumulator) stop() {
	a.stopOnce.Do(func() {
		for _, sh := range a.shards {
			close(sh.quit)
		}
	})
	for _, sh := range a.shards {
		<-sh.done
	}
}

// closeDrain closes the ops channels so the drains apply everything still
// queued and exit (graceful shutdown semantics). The caller guarantees no
// concurrent enqueues.
func (a *Accumulator) closeDrain() {
	for _, sh := range a.shards {
		close(sh.ops)
	}
	for _, sh := range a.shards {
		<-sh.done
	}
}

// enqueue places o on the next shard in round-robin order, waiting up to
// EnqueueWait for room; a persistently full queue is ErrBusy (backpressure)
// and a deleted accumulator is ErrGone.
func (a *Accumulator) enqueue(o op) error {
	if telemetry.Enabled() {
		o.enq = time.Now()
	}
	sh := a.shards[a.next.Add(1)%uint64(len(a.shards))]
	select {
	case <-sh.quit:
		return ErrGone
	default:
	}
	select {
	case sh.ops <- o:
		mQueueDepth.Inc()
		return nil
	default:
	}
	t := time.NewTimer(a.cfg.EnqueueWait)
	defer t.Stop()
	select {
	case sh.ops <- o:
		mQueueDepth.Inc()
		return nil
	case <-sh.quit:
		return ErrGone
	case <-t.C:
		mRejectedAdds.Inc()
		flight.Event("backpressure-429",
			trace.Str("acc", a.name),
			trace.Int("queue_depth", mQueueDepth.Value()),
			trace.Int("queue_cap", int64(a.cfg.QueueDepth*len(a.shards))))
		return ErrBusy
	}
}

// AddFloats enqueues one accepted frame of values. The slice is owned by
// the accumulator from this point on.
func (a *Accumulator) AddFloats(xs []float64) error { return a.enqueue(op{xs: xs}) }

// AddFloatsTraced is AddFloats carrying a trace context: the shard-side
// fold becomes a child span of tctx. The invalid context costs nothing.
func (a *Accumulator) AddFloatsTraced(xs []float64, tctx trace.Context) error {
	return a.enqueue(op{xs: xs, tctx: tctx})
}

// AddHP enqueues one HP partial sum (an exact hand-off from another
// reduction). The value must match the accumulator's format.
func (a *Accumulator) AddHP(h *core.HP) error { return a.AddHPTraced(h, trace.Context{}) }

// AddHPTraced is AddHP carrying a trace context for the shard-side fold.
func (a *Accumulator) AddHPTraced(h *core.HP, tctx trace.Context) error {
	if h.Params() != a.params {
		return core.ErrParamMismatch
	}
	return a.enqueue(op{hp: h, tctx: tctx})
}

// State flushes every shard (a snap op queues behind all previously
// accepted work, so the reply reflects every frame acked before the call)
// and merges the partials in fixed shard order through the sign-rule
// overflow check — the service's deterministic combine point, mirroring
// omp.Reduce's MergeChecked. The merged limbs are bit-identical for every
// dispatch interleaving; only the overflow verdict depends on the combine
// trajectory, which the fixed order pins given the shard partials.
func (a *Accumulator) State() (Info, error) {
	mergeSpan := trace.StartRoot("server.merge")
	mergeSpan.Attr(trace.Str("acc", a.name))
	mergeSpan.Attr(trace.Int("shards", int64(len(a.shards))))
	defer mergeSpan.End()
	replies := make([]chan shardState, len(a.shards))
	for i, sh := range a.shards {
		ch := make(chan shardState, 1)
		select {
		case sh.ops <- op{snap: ch, tctx: mergeSpan.Context()}:
			mQueueDepth.Inc()
		case <-sh.quit:
			return Info{}, ErrGone
		}
		replies[i] = ch
	}
	merged := core.NewAccumulator(a.params)
	adds, frames := a.baseAdds, a.baseFrames
	firstErr := a.restoredErr
	for i, ch := range replies {
		var st shardState
		select {
		case st = <-ch:
		case <-a.shards[i].done:
			// Graceful close raced the snap: the drain applied it before
			// exiting, or dropped it via quit; try a non-blocking read.
			select {
			case st = <-ch:
			default:
				return Info{}, ErrGone
			}
		}
		if st.err != nil && firstErr == nil {
			firstErr = st.err
		}
		merged.AddHP(st.sum)
		adds += st.adds
		frames += st.frames
	}
	if firstErr == nil {
		firstErr = merged.Err()
	}
	txt, err := merged.Sum().MarshalText()
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Name:   a.name,
		N:      a.params.N,
		K:      a.params.K,
		Shards: len(a.shards),
		Adds:   adds,
		Frames: frames,
		Sum:    merged.Float64(),
		HP:     string(txt),
	}
	if firstErr != nil {
		info.Err = firstErr.Error()
	}
	return info, nil
}

// checkpoint returns the accumulator's state as a core.SumCheckpoint (Step
// = values applied, Sum = merged canonical HP) plus its frame count and
// sticky error, for the snapshot writer.
func (a *Accumulator) checkpoint() (*core.SumCheckpoint, uint64, string, error) {
	info, err := a.State()
	if err != nil {
		return nil, 0, "", err
	}
	var h core.HP
	if err := h.UnmarshalText([]byte(info.HP)); err != nil {
		return nil, 0, "", err
	}
	return &core.SumCheckpoint{Step: info.Adds, Sum: &h}, info.Frames, info.Err, nil
}

// seedRestore installs a restored checkpoint: the HP value is enqueued on
// shard 0 (associativity makes the landing shard irrelevant) and the
// counters and sticky error are carried at the accumulator level.
func (a *Accumulator) seedRestore(ck *core.SumCheckpoint, frames uint64, errText string) error {
	if ck.Sum.Params() != a.params {
		return core.ErrParamMismatch
	}
	if err := a.enqueue(op{hp: ck.Sum, seed: true}); err != nil {
		return err
	}
	a.baseAdds = ck.Step
	a.baseFrames = frames
	if errText != "" {
		a.restoredErr = errors.New(errText)
	}
	return nil
}
