package server

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// flight is the server's flight-recorder ring: backpressure rejections,
// escaped 5xx responses, replica divergence, and snapshot/restore milestones
// land here. Always on, but written only from cold paths.
var flight = trace.Subsystem("server")

// Config tunes a summation Server. The zero value selects the documented
// defaults; New normalizes it.
type Config struct {
	// Params is the default HP format for accumulators created without an
	// explicit format. Defaults to core.Params384.
	Params core.Params
	// Shards is the number of independent drain lanes per replica.
	// Defaults to GOMAXPROCS; associativity makes the count invisible in
	// the sums, so it only trades contention for goroutines.
	Shards int
	// Replicas is the number of independent replica engines every accepted
	// frame is folded into (n). Defaults to 1 (replication off: every
	// certificate is a single self-vote).
	Replicas int
	// Quorum is the number of byte-identical replica states required to
	// serve a read (k). Defaults to Replicas/2+1 — a strict majority — and
	// is clamped to [1, Replicas].
	Quorum int
	// ReportHook, when non-nil, intercepts each replica's state report (the
	// canonical HP envelope) before certification. It exists so fault
	// injection (faults.ReplicaInjector.OnReport) can make a replica lie,
	// equivocate, or replay stale state without the replica itself being
	// wrong; production servers leave it nil.
	ReportHook func(replica int, env []byte) []byte
	// QueueDepth bounds each shard's pending-operation channel; a full
	// queue is the backpressure signal. Defaults to 256.
	QueueDepth int
	// EnqueueWait is how long an ingest waits for queue room before giving
	// up with a busy error (HTTP 429). Defaults to 5ms.
	EnqueueWait time.Duration
	// MaxFramePayload caps a single frame's payload bytes (default
	// MaxFramePayload); MaxRequestBytes caps one request body (default
	// 64 MiB); MaxRequestFrames caps frames per request (default 65536).
	MaxFramePayload  int
	MaxRequestBytes  int64
	MaxRequestFrames int
	// FrameReadTimeout is the per-frame read deadline on streaming ingest:
	// a client that stalls mid-frame longer than this is cut off with 408
	// rather than holding a connection open. Defaults to 10s.
	FrameReadTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses. Defaults
	// to 1s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Params == (core.Params{}) {
		c.Params = core.Params384
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Quorum <= 0 {
		c.Quorum = c.Replicas/2 + 1
	}
	if c.Quorum > c.Replicas {
		c.Quorum = c.Replicas
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.EnqueueWait <= 0 {
		c.EnqueueWait = 5 * time.Millisecond
	}
	if c.MaxFramePayload <= 0 {
		c.MaxFramePayload = MaxFramePayload
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.MaxRequestFrames <= 0 {
		c.MaxRequestFrames = 1 << 16
	}
	if c.FrameReadTimeout <= 0 {
		c.FrameReadTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Sentinel errors surfaced by the registry and mapped onto HTTP statuses by
// the handler layer.
var (
	ErrBusy         = errors.New("server: shard queue full")
	ErrGone         = errors.New("server: accumulator deleted")
	ErrNotFound     = errors.New("server: no such accumulator")
	ErrExists       = errors.New("server: accumulator exists with different parameters")
	ErrBadName      = errors.New("server: invalid accumulator name")
	ErrServerClosed = errors.New("server: closed")
	// ErrDiverged fails a certified read closed: the replica states did not
	// agree byte for byte (HTTP 503). The wrapped message names the
	// minority replicas; retrying after the quarantine-and-reseed pass is
	// expected to succeed while a quorum of honest replicas remains.
	ErrDiverged = errors.New("server: replica divergence")
)

// Server is the sharded registry of named accumulators. Create it with New,
// serve it with Handler, and stop it with Close — only after the HTTP layer
// has stopped delivering requests (hpsumd orders http.Server.Shutdown
// before Close; tests must do the same).
type Server struct {
	cfg    Config
	mu     sync.RWMutex
	accs   map[string]*Accumulator
	aud    *auditState // nil: auditing off
	closed bool
}

// New returns an empty server with cfg normalized to its defaults.
func New(cfg Config) *Server {
	return &Server{cfg: cfg.withDefaults(), accs: make(map[string]*Accumulator)}
}

// Config returns the normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// validName reports whether name is acceptable: 1-128 bytes of
// [a-zA-Z0-9._-], so names embed safely in URL paths and snapshot files.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Create registers an accumulator under name with format p (zero Params
// selects the server default). It returns the accumulator and whether it
// was newly created; asking for an existing name with a different format is
// ErrExists.
func (s *Server) Create(name string, p core.Params) (*Accumulator, bool, error) {
	if !validName(name) {
		return nil, false, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if p == (core.Params{}) {
		p = s.cfg.Params
	}
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrServerClosed
	}
	if a, ok := s.accs[name]; ok {
		if a.params != p {
			return nil, false, fmt.Errorf("%w: %q is (N=%d,k=%d), requested (N=%d,k=%d)",
				ErrExists, name, a.params.N, a.params.K, p.N, p.K)
		}
		return a, false, nil
	}
	a := newAccumulator(name, p, s.cfg, s.aud)
	s.accs[name] = a
	mAccumulators.Set(int64(len(s.accs)))
	return a, true, nil
}

// Lookup returns the accumulator registered under name, or nil.
func (s *Server) Lookup(name string) *Accumulator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.accs[name]
}

// Delete unregisters name and signals its drain goroutines to stop,
// dropping any queued operations. It reports whether the name existed.
// Deleting an audited accumulator invalidates the audit trail for that
// name: its journaled frames outlive the state they were folded into.
func (s *Server) Delete(name string) bool {
	s.mu.Lock()
	a, ok := s.accs[name]
	if ok {
		delete(s.accs, name)
		mAccumulators.Set(int64(len(s.accs)))
	}
	s.mu.Unlock()
	if ok {
		a.stop()
	}
	return ok
}

// Names returns the registered accumulator names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.accs))
	for name := range s.accs {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Close drains every shard queue and stops the drain goroutines. It must
// only be called once no more requests are being delivered (after HTTP
// shutdown): queued work is fully applied, then the goroutines exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	accs := make([]*Accumulator, 0, len(s.accs))
	for _, a := range s.accs {
		accs = append(accs, a)
	}
	s.mu.Unlock()
	for _, a := range accs {
		a.closeDrain()
	}
}

// Info is the JSON description of one accumulator, as served by the read
// endpoints. HP is the canonical MarshalText certificate: two sums are
// bit-identical iff these strings are byte-equal. Cert, when present, is
// the k-of-n agreement certificate the value was served under.
type Info struct {
	Name   string       `json:"name"`
	N      int          `json:"n"`
	K      int          `json:"k"`
	Shards int          `json:"shards,omitempty"`
	Adds   uint64       `json:"adds"`
	Frames uint64       `json:"frames"`
	Sum    float64      `json:"sum"`
	HP     string       `json:"hp"`
	Err    string       `json:"error,omitempty"`
	Cert   *Certificate `json:"cert,omitempty"`
}

// Accumulator is one named accumulator, replicated across cfg.Replicas
// independent engines. Every accepted frame is folded into every active
// replica; reads are certified by comparing the replicas' canonical states
// byte for byte (replica.go). mu is the replication lock: ingest holds it
// shared (frames fan out concurrently), while certification, quarantine,
// reseeding, and audit cuts hold it exclusively — an exclusive acquisition
// is therefore a quiescent point where the set of accepted frames is exact.
type Accumulator struct {
	name   string
	params core.Params
	cfg    Config
	aud    *auditState // nil: auditing off

	mu       sync.RWMutex
	replicas []*replica

	// Ingest-Id resume state: id -> frames accepted under that id, so a
	// client retrying a transport-severed POST with the same id and body
	// never double-counts a frame (http.go, client.go).
	resMu      sync.Mutex
	resume     map[string]int
	resumeFIFO []string

	stopOnce sync.Once
}

func newAccumulator(name string, p core.Params, cfg Config, aud *auditState) *Accumulator {
	a := &Accumulator{name: name, params: p, cfg: cfg, aud: aud,
		resume: make(map[string]int)}
	a.replicas = make([]*replica, cfg.Replicas)
	for i := range a.replicas {
		a.replicas[i] = &replica{id: i, eng: newEngine(name, p, cfg)}
	}
	return a
}

// Name returns the accumulator's registry name.
func (a *Accumulator) Name() string { return a.name }

// Params returns the accumulator's HP format.
func (a *Accumulator) Params() core.Params { return a.params }

// stop kills every replica's drains, dropping queued work (delete
// semantics).
func (a *Accumulator) stop() {
	a.stopOnce.Do(func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		for _, r := range a.replicas {
			r.eng.stop()
		}
	})
}

// closeDrain gracefully drains every replica (graceful shutdown semantics).
// The caller guarantees no concurrent enqueues.
func (a *Accumulator) closeDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.replicas {
		if r.status == replicaActive {
			r.eng.closeDrain()
		} else {
			r.eng.stop()
		}
	}
}

// active returns the replicas currently serving (not permanently
// quarantined). Caller holds mu (shared or exclusive).
func (a *Accumulator) active() []*replica {
	out := make([]*replica, 0, len(a.replicas))
	for _, r := range a.replicas {
		if r.status == replicaActive {
			out = append(out, r)
		}
	}
	return out
}

// ingest admits one frame and fans it out to every active replica, then
// journals it. The first active replica is the admission gate (its full
// queue is the 429 backpressure signal); once admitted there, the frame
// blocks until it lands on every other active replica, so an accepted frame
// is never partially replicated. Runs under the shared replication lock:
// an exclusive acquisition (certify/audit) observes either all of a frame's
// effects or none.
func (a *Accumulator) ingest(o op) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	admitted := false
	for _, r := range a.replicas {
		if r.status != replicaActive {
			continue
		}
		if !admitted {
			// First active replica is the admission gate.
			if err := r.eng.enqueue(o, false); err != nil {
				return err
			}
			admitted = true
			continue
		}
		if err := r.eng.enqueue(o, true); err != nil {
			// ErrGone here means delete raced the ingest; the accepted
			// frame dies with the accumulator.
			return err
		}
	}
	if !admitted {
		return ErrGone
	}
	if a.aud != nil && !o.seed {
		if err := a.aud.journalOp(a.name, o); err != nil {
			// The frame is folded but not journaled — a real durability
			// fault the audit replay will name. Surface it loudly.
			return fmt.Errorf("server: journal: %w", err)
		}
	}
	return nil
}

// AddFloats enqueues one accepted frame of values. The slice is owned by
// the accumulator from this point on.
func (a *Accumulator) AddFloats(xs []float64) error { return a.ingest(op{xs: xs}) }

// AddFloatsTraced is AddFloats carrying a trace context: the shard-side
// fold becomes a child span of tctx. The invalid context costs nothing.
func (a *Accumulator) AddFloatsTraced(xs []float64, tctx trace.Context) error {
	return a.ingest(op{xs: xs, tctx: tctx})
}

// AddHP enqueues one HP partial sum (an exact hand-off from another
// reduction). The value must match the accumulator's format.
func (a *Accumulator) AddHP(h *core.HP) error { return a.AddHPTraced(h, trace.Context{}) }

// AddHPTraced is AddHP carrying a trace context for the shard-side fold.
func (a *Accumulator) AddHPTraced(h *core.HP, tctx trace.Context) error {
	if h.Params() != a.params {
		return core.ErrParamMismatch
	}
	return a.ingest(op{hp: h, tctx: tctx})
}

// State flushes the replica set at a quiescent point and returns the
// majority-agreed Info. Divergent minority replicas are quarantined and
// reseeded as a side effect, but the read itself tolerates divergence as
// long as a quorum agrees — this is the snapshot/checkpoint path, which
// must never persist a lying replica's value but also must not wedge a
// graceful shutdown over one bad replica. Reads served to clients go
// through Certified, which fails closed instead.
func (a *Accumulator) State() (Info, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, cert, _, err := a.agree()
	if err != nil {
		return Info{}, err
	}
	return a.infoFrom(st, cert), nil
}

// Certified is the client read path: it flushes the replica set at a
// quiescent point and serves the value only under a full agreement
// certificate. Any divergence — even with a healthy quorum — fails the
// read closed with ErrDiverged (HTTP 503) while the quarantine-and-reseed
// pass repairs the minority, so a retry is expected to succeed.
func (a *Accumulator) Certified() (Info, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	mCertReads.Inc()
	st, cert, divergent, err := a.agree()
	if err != nil {
		return Info{}, err
	}
	if len(divergent) > 0 {
		return Info{}, fmt.Errorf("%w: replicas %v disagreed with the quorum; quarantined and reseeded",
			ErrDiverged, divergent)
	}
	return a.infoFrom(st, cert), nil
}

// infoFrom renders an agreed state as the wire Info. Caller holds mu.
func (a *Accumulator) infoFrom(st engineState, cert *Certificate) Info {
	txt, err := st.sum.MarshalText()
	if err != nil {
		// MarshalText on an in-format HP cannot fail; keep the read
		// serving rather than inventing an error path.
		txt = []byte("")
	}
	info := Info{
		Name:   a.name,
		N:      a.params.N,
		K:      a.params.K,
		Shards: len(a.replicas[0].eng.shards),
		Adds:   st.adds,
		Frames: st.frames,
		Sum:    st.sum.Float64(),
		HP:     string(txt),
		Cert:   cert,
	}
	if st.err != nil {
		info.Err = st.err.Error()
	}
	return info
}

// checkpoint returns the accumulator's state as a core.SumCheckpoint (Step
// = values applied, Sum = merged canonical HP) plus its frame count and
// sticky error, for the snapshot writer. Divergence-tolerant: the snapshot
// must record the majority value even while a minority replica is lying.
func (a *Accumulator) checkpoint() (*core.SumCheckpoint, uint64, string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, _, _, err := a.agree()
	if err != nil {
		return nil, 0, "", err
	}
	errText := ""
	if st.err != nil {
		errText = st.err.Error()
	}
	return &core.SumCheckpoint{Step: st.adds, Sum: st.sum}, st.frames, errText, nil
}

// Envelope returns the accumulator's current canonical HP partial together
// with its adds and frames counters — the contribution the gossip layer
// replicates across the cluster. Like checkpoint it reads the agreed
// (majority) state, so a gossiped partial always matches what snapshots and
// certified reads see. The returned HP is a copy the caller owns.
func (a *Accumulator) Envelope() (*core.HP, uint64, uint64, error) {
	ck, frames, _, err := a.checkpoint()
	if err != nil {
		return nil, 0, 0, err
	}
	return ck.Sum.Clone(), ck.Step, frames, nil
}

// seedRestore installs a restored checkpoint into every replica and, when
// auditing is on, journals the hand-off so replay can verify the restored
// state extends the journaled trajectory exactly.
func (a *Accumulator) seedRestore(ck *core.SumCheckpoint, frames uint64, errText string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.replicas {
		if err := r.eng.seed(ck, frames, errText); err != nil {
			return err
		}
	}
	if a.aud != nil {
		if err := a.aud.journalSeed(a.name, ck, frames); err != nil {
			return fmt.Errorf("server: journal: %w", err)
		}
	}
	return nil
}

// resumeCount returns the frames already accepted under id (0 for unknown
// ids, including the empty id).
func (a *Accumulator) resumeCount(id string) int {
	if id == "" {
		return 0
	}
	a.resMu.Lock()
	defer a.resMu.Unlock()
	return a.resume[id]
}

// noteAccepted records that count frames of id's stream are now accepted.
// The map is bounded: the oldest ids fall off, trading resume coverage for
// memory — a client retrying a stream older than the window double-counts
// nothing, it just loses skip-ahead and gets a certificate mismatch from
// its own bookkeeping instead.
func (a *Accumulator) noteAccepted(id string, count int) {
	if id == "" {
		return
	}
	const maxResumeIDs = 1024
	a.resMu.Lock()
	defer a.resMu.Unlock()
	if _, ok := a.resume[id]; !ok {
		if len(a.resumeFIFO) >= maxResumeIDs {
			oldest := a.resumeFIFO[0]
			a.resumeFIFO = a.resumeFIFO[1:]
			delete(a.resume, oldest)
		}
		a.resumeFIFO = append(a.resumeFIFO, id)
	}
	a.resume[id] = count
}
