package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// newTestServer starts an httptest server around a fresh Server and
// returns both plus a ready client. Cleanup tears the HTTP layer down
// before draining the shards, matching the documented shutdown order.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client(), RetryWait: time.Millisecond}
}

func oracleText(t *testing.T, p core.Params, xs []float64) string {
	t.Helper()
	a := core.NewAccumulator(p)
	a.AddAll(xs)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	txt, err := a.Sum().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	return string(txt)
}

func TestCreateGetDeleteList(t *testing.T) {
	_, c := newTestServer(t, Config{})

	info, err := c.Create("demo", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if info.N != core.Params384.N || info.K != core.Params384.K {
		t.Fatalf("default params (N=%d,k=%d)", info.N, info.K)
	}
	// Idempotent re-create with the same (defaulted) format.
	if _, err := c.Create("demo", core.Params384); err != nil {
		t.Fatal(err)
	}
	// Same name, different format: conflict.
	if _, err := c.Create("demo", core.Params128); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("conflicting create: %v", err)
	}
	if _, err := c.Create("other", core.Params128); err != nil {
		t.Fatal(err)
	}
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "demo" || names[1] != "other" {
		t.Fatalf("names %v", names)
	}
	if err := c.Delete("other"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("other"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := c.Get("other"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestBadNamesRejected(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, name := range []string{"a b", "x%2Fy", strings.Repeat("q", 200)} {
		if _, err := c.Create(name, core.Params{}); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

func TestStreamAndReadMatchesOracle(t *testing.T) {
	_, c := newTestServer(t, Config{})
	xs := rng.UniformSet(rng.New(42), 20000, -0.5, 0.5)
	if _, err := c.Create("s", core.Params{}); err != nil {
		t.Fatal(err)
	}
	c.FrameLen = 512
	stats, err := c.Stream("s", xs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Values != len(xs) {
		t.Fatalf("acked %d values, want %d", stats.Values, len(xs))
	}
	info, err := c.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Adds != uint64(len(xs)) {
		t.Fatalf("adds %d, want %d", info.Adds, len(xs))
	}
	want := oracleText(t, core.Params384, xs)
	if info.HP != want {
		t.Fatalf("server sum %s\n  oracle %s", info.HP, want)
	}
	// The rounded JSON field must agree with the oracle rounding too.
	a := core.NewAccumulator(core.Params384)
	a.AddAll(xs)
	if math.Float64bits(info.Sum) != math.Float64bits(a.Float64()) {
		t.Fatalf("rounded %x, want %x", math.Float64bits(info.Sum), math.Float64bits(a.Float64()))
	}
}

func TestHPFrameHandoff(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if _, err := c.Create("h", core.Params{}); err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(7), 5000, -1, 1)
	// Pre-reduce half the workload elsewhere (an "MPI rank"), hand the
	// partial over as an HP frame, stream the rest as floats.
	half := len(xs) / 2
	partial, err := core.SumHP(core.Params384, xs[:half])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddHP("h", partial); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream("h", xs[half:]); err != nil {
		t.Fatal(err)
	}
	info, err := c.Get("h")
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleText(t, core.Params384, xs); info.HP != want {
		t.Fatalf("handoff sum %s\n   oracle %s", info.HP, want)
	}
	// Param-mismatched HP frames must be rejected before enqueue.
	wrong := core.New(core.Params128)
	if err := c.AddHP("h", wrong); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("mismatched HP frame: %v", err)
	}
}

func TestOneShotSum(t *testing.T) {
	_, c := newTestServer(t, Config{})
	xs := rng.UniformSet(rng.New(3), 10000, -2, 2)
	info, err := c.Sum(xs, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleText(t, core.Params384, xs); info.HP != want {
		t.Fatalf("one-shot %s, want %s", info.HP, want)
	}
	info128, err := c.Sum([]float64{1.5, 2.5}, core.Params128)
	if err != nil {
		t.Fatal(err)
	}
	if info128.N != 2 || info128.Sum != 4 {
		t.Fatalf("n=%d sum=%v", info128.N, info128.Sum)
	}
}

func TestCorruptFramesRejected(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if _, err := c.Create("x", core.Params{}); err != nil {
		t.Fatal(err)
	}
	good := AppendFloatFrame(nil, []float64{1, 2})
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0x10 // CRC byte

	// One good frame then a corrupt one: 400, with the good frame counted.
	resp, err := c.http().Post(c.url("/v1/acc/x/add"), "application/octet-stream",
		bytes.NewReader(append(append([]byte(nil), good...), bad...)))
	if err != nil {
		t.Fatal(err)
	}
	var res AddResult
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if err := decodeJSON(resp, &res); err != nil {
		t.Fatal(err)
	}
	if res.FramesAccepted != 1 || res.ValuesAccepted != 2 {
		t.Fatalf("accepted %d frames / %d values, want 1 / 2", res.FramesAccepted, res.ValuesAccepted)
	}
	if res.Error == "" {
		t.Fatal("no error text")
	}
	// Non-finite values are rejected at admission, not stuck into the sum.
	nanFrame := AppendFloatFrame(nil, []float64{math.NaN()})
	resp, err = c.http().Post(c.url("/v1/acc/x/add"), "application/octet-stream", bytes.NewReader(nanFrame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN frame: status %d, want 400", resp.StatusCode)
	}
	// The accumulator still works and holds exactly the accepted frame.
	info, err := c.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if info.Err != "" {
		t.Fatalf("sticky error leaked into accumulator: %q", info.Err)
	}
	if info.Sum != 3 {
		t.Fatalf("sum %v, want 3", info.Sum)
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	_, c := newTestServer(t, Config{MaxFramePayload: 64})
	if _, err := c.Create("x", core.Params{}); err != nil {
		t.Fatal(err)
	}
	frame := AppendFloatFrame(nil, make([]float64, 9)) // 72 > 64 payload bytes
	resp, err := c.http().Post(c.url("/v1/acc/x/add"), "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestBackpressure429AndResume(t *testing.T) {
	// One shard with a one-deep queue and a negligible enqueue wait: a big
	// frame parks the drain goroutine, the next fills the queue, and the
	// third must be refused with 429 + Retry-After. The parking frame must
	// keep the drain busy well past the scheduler's worst-case preemption
	// latency (~20ms on GOMAXPROCS=1): if the admission waiter only wakes
	// when the fold finishes and the queue has room again, the timed-out
	// select can race the now-ready send and admit the frame.
	s, c := newTestServer(t, Config{
		Shards: 1, QueueDepth: 1, EnqueueWait: time.Millisecond,
		MaxFramePayload: 256 << 20, MaxRequestBytes: 512 << 20,
	})
	if _, err := c.Create("bp", core.Params{}); err != nil {
		t.Fatal(err)
	}
	big := make([]float64, 1<<24)
	for i := range big {
		big[i] = 1.0 / (1 << 20)
	}
	var body []byte
	body = AppendFloatFrame(body, big)                // occupies the drain
	body = AppendFloatFrame(body, []float64{1})       // sits in the queue
	body = AppendFloatFrame(body, []float64{2, 3, 4}) // must bounce
	resp, err := c.http().Post(c.url("/v1/acc/bp/add"), "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var res AddResult
	if err := decodeJSON(resp, &res); err != nil {
		t.Fatal(err)
	}
	if res.FramesAccepted < 1 || res.FramesAccepted > 2 {
		t.Fatalf("frames_accepted %d, want 1 or 2", res.FramesAccepted)
	}

	// The client's retry loop must push a full workload through this same
	// tiny-queue server, and the result must still be exact.
	xs := rng.UniformSet(rng.New(9), 5000, -1, 1)
	if _, err := c.Create("resume", core.Params{}); err != nil {
		t.Fatal(err)
	}
	c.FrameLen = 64
	c.ReqFrames = 8
	stats, err := c.Stream("resume", xs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Values != len(xs) {
		t.Fatalf("acked %d values, want %d", stats.Values, len(xs))
	}
	info, err := c.Get("resume")
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleText(t, s.Config().Params, xs); info.HP != want {
		t.Fatalf("resume sum %s\n  oracle %s", info.HP, want)
	}
}

func TestRangeErrorIsSticky(t *testing.T) {
	// Underflow (a value with bits below 2^-64k) is a per-accumulator
	// sticky error, reported in the read Info, exactly like Accumulator.
	_, c := newTestServer(t, Config{Params: core.Params128})
	if _, err := c.Create("u", core.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream("u", []float64{1, 1e-30}); err != nil {
		t.Fatal(err)
	}
	info, err := c.Get("u")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Err, "underflow") {
		t.Fatalf("error %q, want underflow", info.Err)
	}
	if info.Sum != 1 {
		t.Fatalf("sum %v, want 1 (offending value skipped)", info.Sum)
	}
}

func TestAddToMissingAccumulator(t *testing.T) {
	_, c := newTestServer(t, Config{})
	frame := AppendFloatFrame(nil, []float64{1})
	resp, err := c.http().Post(c.url("/v1/acc/nope/add"), "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestListJSONShape(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if _, err := c.Create("a1", core.Params{}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.http().Get(c.url("/v1/acc"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out["accumulators"]; !ok {
		t.Fatalf("list body %v", out)
	}
}
