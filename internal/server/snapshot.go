package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Snapshot file format — the durable image a graceful shutdown writes and
// -restore reloads byte-identically:
//
//	magic "HPSS" | version(1) | count(4, big-endian) | entries | crc32(4)
//
// with each entry
//
//	nameLen(2) | name | frames(8) | errLen(2) | err | ckptLen(4) | ckpt
//
// where ckpt is a core.SumCheckpoint envelope (itself CRC-guarded, carrying
// the adds cursor and the exact merged HP sum — self-describing, so mixed
// per-accumulator formats restore correctly). The outer CRC-32 (IEEE, the
// repo-wide convention) covers everything before it, so truncation or
// bit rot anywhere fails loudly at restore instead of seeding a silently
// wrong service state.

const (
	snapshotMagic   = "HPSS"
	snapshotVersion = 1
)

// snapshotEntry is one accumulator's durable state.
type snapshotEntry struct {
	name    string
	frames  uint64
	errText string
	ckpt    []byte // SumCheckpoint.MarshalBinary envelope
}

// Snapshot flushes every accumulator (in sorted name order, for
// deterministic bytes) and writes the snapshot file atomically
// (temp file + rename). Safe to call on a live server; the image reflects
// all frames acked before the flush of each accumulator.
func (s *Server) Snapshot(path string) error {
	names := s.Names()
	entries := make([]snapshotEntry, 0, len(names))
	for _, name := range names {
		a := s.Lookup(name)
		if a == nil {
			continue // deleted between Names and Lookup
		}
		ck, frames, errText, err := a.checkpoint()
		if err != nil {
			return fmt.Errorf("server: snapshot %q: %w", name, err)
		}
		env, err := ck.MarshalBinary()
		if err != nil {
			return fmt.Errorf("server: snapshot %q: %w", name, err)
		}
		entries = append(entries, snapshotEntry{name: name, frames: frames, errText: errText, ckpt: env})
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.name)))
		buf = append(buf, e.name...)
		buf = binary.BigEndian.AppendUint64(buf, e.frames)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.errText)))
		buf = append(buf, e.errText...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.ckpt)))
		buf = append(buf, e.ckpt...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if err := writeFileDurable(path, buf); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	mSnapshots.Inc()
	return nil
}

// snapshotCrash is a test-only crash injection point: when non-nil it is
// called at each durability stage of the snapshot write, and a non-nil
// return aborts the write there — simulating the process dying at that
// instant. Stages: "written" (temp file written and fsynced, not yet
// renamed) and "renamed" (renamed over path, parent directory not yet
// synced).
var snapshotCrash func(stage string) error

// writeFileDurable writes buf to path so that a crash at any instant leaves
// either the complete old file or the complete new one: write to a temp
// file, fsync it (data hits the platter before the rename can be observed),
// rename into place, then fsync the parent directory (the rename itself is
// durable). Skipping either fsync risks a post-crash file whose name exists
// but whose bytes are garbage — exactly the torn state the CRC would catch,
// but catching it means losing the snapshot; ordering the syncs means never
// creating it.
func writeFileDurable(path string, buf []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if snapshotCrash != nil {
		if err := snapshotCrash("written"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if snapshotCrash != nil {
		if err := snapshotCrash("renamed"); err != nil {
			return err
		}
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		serr := dir.Sync()
		dir.Close()
		if serr != nil {
			return serr
		}
	}
	return nil
}

// parseSnapshot decodes and verifies a snapshot image.
func parseSnapshot(data []byte) ([]snapshotEntry, error) {
	const minLen = 4 + 1 + 4 + 4
	if len(data) < minLen {
		return nil, fmt.Errorf("server: snapshot of %d bytes, need at least %d", len(data), minLen)
	}
	body, stored := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return nil, fmt.Errorf("server: snapshot checksum mismatch (stored %08x, computed %08x)", stored, got)
	}
	if string(body[:4]) != snapshotMagic {
		return nil, fmt.Errorf("server: bad snapshot magic %q", body[:4])
	}
	if body[4] != snapshotVersion {
		return nil, fmt.Errorf("server: unsupported snapshot version %d", body[4])
	}
	count := int(binary.BigEndian.Uint32(body[5:9]))
	off := 9
	need := func(n int) error {
		if len(body)-off < n {
			return fmt.Errorf("server: snapshot truncated at offset %d (need %d more bytes)", off, n)
		}
		return nil
	}
	entries := make([]snapshotEntry, 0, min(count, 1024))
	for i := 0; i < count; i++ {
		if err := need(2); err != nil {
			return nil, err
		}
		nameLen := int(binary.BigEndian.Uint16(body[off:]))
		off += 2
		if err := need(nameLen + 8 + 2); err != nil {
			return nil, err
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		frames := binary.BigEndian.Uint64(body[off:])
		off += 8
		errLen := int(binary.BigEndian.Uint16(body[off:]))
		off += 2
		if err := need(errLen + 4); err != nil {
			return nil, err
		}
		errText := string(body[off : off+errLen])
		off += errLen
		ckptLen := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if err := need(ckptLen); err != nil {
			return nil, err
		}
		ckpt := body[off : off+ckptLen]
		off += ckptLen
		if !validName(name) {
			return nil, fmt.Errorf("server: snapshot entry %d: %w: %q", i, ErrBadName, name)
		}
		entries = append(entries, snapshotEntry{name: name, frames: frames, errText: errText, ckpt: ckpt})
	}
	if off != len(body) {
		return nil, fmt.Errorf("server: %d trailing snapshot bytes", len(body)-off)
	}
	return entries, nil
}

// Restore reloads a snapshot file into the server, creating each named
// accumulator with its checkpointed format and seeding it with the exact
// HP sum it held at shutdown. Because the seed value is the canonical
// merged sum and HP addition is associative, the restored accumulator is
// byte-identical (MarshalText equal) to the pre-shutdown state, and adds
// accepted after restore continue the same exact trajectory. Returns the
// number of accumulators restored.
func (s *Server) Restore(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	entries, err := parseSnapshot(data)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		var ck core.SumCheckpoint
		if err := ck.UnmarshalBinary(e.ckpt); err != nil {
			return 0, fmt.Errorf("server: restore %q: %w", e.name, err)
		}
		a, created, err := s.Create(e.name, ck.Sum.Params())
		if err != nil {
			return 0, fmt.Errorf("server: restore %q: %w", e.name, err)
		}
		if !created {
			return 0, fmt.Errorf("server: restore %q: already exists", e.name)
		}
		if err := a.seedRestore(&ck, e.frames, e.errText); err != nil {
			return 0, fmt.Errorf("server: restore %q: %w", e.name, err)
		}
		mRestores.Inc()
	}
	return len(entries), nil
}
