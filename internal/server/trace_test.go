package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// streamWorkload pushes xs through clients concurrent streaming clients
// against a fresh test server and returns the accumulator's certificate.
func streamWorkload(t *testing.T, xs []float64, clients int) string {
	t.Helper()
	_, c := newTestServer(t, Config{Shards: 4, QueueDepth: 16})
	if _, err := c.Create("tr", core.Params{}); err != nil {
		t.Fatal(err)
	}
	parts := partitions(xs, clients, 7)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{Base: c.Base, HTTP: c.HTTP, FrameLen: 256, RetryWait: time.Millisecond}
			_, errs[i] = cl.Stream("tr", parts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	info, err := c.Get("tr")
	if err != nil {
		t.Fatal(err)
	}
	if info.Err != "" {
		t.Fatalf("sticky error %q", info.Err)
	}
	return info.HP
}

// The tracing layer's core promise: recording spans end to end — client
// send, trace-context wire frames, shard folds, merge — changes nothing
// about the sum. Certificates with tracing off and on must be identical to
// each other and to the serial oracle.
func TestSumsBitIdenticalWithTracingOnOrOff(t *testing.T) {
	xs := rng.UniformSet(rng.New(31), 30000, -0.5, 0.5)
	want := oracleText(t, core.Params384, xs)

	off := streamWorkload(t, xs, 6)

	defer trace.SetEnabled(trace.SetEnabled(true))
	defer trace.SetSampling(trace.SetSampling(1))
	trace.Reset()
	defer trace.Reset()
	on := streamWorkload(t, xs, 6)

	if off != want {
		t.Fatalf("tracing off diverged from oracle:\n server %s\n oracle %s", off, want)
	}
	if on != off {
		t.Fatalf("tracing changed the sum:\n   on %s\n  off %s", on, off)
	}

	// Prove the traced run actually recorded the pipeline end to end: a
	// shard fold parented under an ingest span that is itself parented
	// under a client send span — the context crossed the wire in 'T'
	// frames (client.send → server.ingest → server.fold).
	foldParents := map[uint64]bool{}
	ingestBySpan := map[uint64]uint64{} // span id -> parent span id
	sendSpans := map[uint64]bool{}
	for _, r := range trace.Snapshot() {
		switch r.Name {
		case "server.fold":
			if r.Parent != 0 {
				foldParents[r.Parent] = true
			}
		case "server.ingest":
			ingestBySpan[r.SpanID] = r.Parent
		case "client.send":
			sendSpans[r.SpanID] = true
		}
	}
	if len(foldParents) == 0 || len(ingestBySpan) == 0 || len(sendSpans) == 0 {
		t.Fatalf("traced run recorded %d fold parents, %d ingest spans, %d send spans; want all > 0",
			len(foldParents), len(ingestBySpan), len(sendSpans))
	}
	stitched := false
	for p := range foldParents {
		if sendSpans[ingestBySpan[p]] {
			stitched = true
			break
		}
	}
	if !stitched {
		t.Fatal("no server.fold → server.ingest → client.send chain: the wire trace context did not stitch")
	}
}

// scrapeServerMetrics GETs /metrics off the telemetry exporter and returns
// every integer-valued sample by name (counters and gauges).
func scrapeServerMetrics(t *testing.T) map[string]int64 {
	t.Helper()
	srv := httptest.NewServer(telemetry.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]int64)
	for _, m := range regexp.MustCompile(`(?m)^([a-z_]+) (-?\d+)$`).FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatalf("metric %s: %v", m[1], err)
		}
		vals[m[1]] = v
	}
	return vals
}

// Backpressure audit: frames refused with 429 must increment the rejection
// counter, must NOT leak queue-depth gauge increments (the gauge returns to
// its pre-burst level once the drains catch up), and must leave a
// backpressure-429 event in the server's flight-recorder ring.
func TestBackpressure429MetricsAudit(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	before := scrapeServerMetrics(t)

	// As in TestBackpressure429AndResume, the parking frame must keep the
	// drain busy well past the scheduler's worst-case preemption latency on
	// GOMAXPROCS=1, or the timed-out admission select can race the
	// fold-finished send and admit the frame.
	s, c := newTestServer(t, Config{
		Shards: 1, QueueDepth: 1, EnqueueWait: time.Millisecond,
		MaxFramePayload: 256 << 20, MaxRequestBytes: 512 << 20,
	})
	if _, err := c.Create("bp", core.Params{}); err != nil {
		t.Fatal(err)
	}
	big := make([]float64, 1<<24)
	for i := range big {
		big[i] = 1.0 / (1 << 20)
	}
	var body []byte
	body = AppendFloatFrame(body, big)                // occupies the drain
	body = AppendFloatFrame(body, []float64{1})       // sits in the queue
	body = AppendFloatFrame(body, []float64{2, 3, 4}) // must bounce with 429
	resp, err := c.http().Post(c.url("/v1/acc/bp/add"), "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// State() queues a flush behind all accepted work, so after it returns
	// the drains have applied everything and the queues are empty again.
	if _, err := s.Lookup("bp").State(); err != nil {
		t.Fatal(err)
	}

	after := scrapeServerMetrics(t)
	if got := after["server_rejected_adds_total"] - before["server_rejected_adds_total"]; got < 1 {
		t.Fatalf("server_rejected_adds_total moved by %d across a 429, want >= 1", got)
	}
	if before["server_queue_depth"] != after["server_queue_depth"] {
		t.Fatalf("queue-depth gauge leaked: %d before, %d after drain",
			before["server_queue_depth"], after["server_queue_depth"])
	}

	found := false
	for _, ev := range trace.Subsystem("server").Events() {
		if ev.Name != "backpressure-429" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "acc" && a.Str == "bp" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no backpressure-429 flight event for accumulator bp")
	}
}

// The ingest enqueue path — what every accepted frame pays between the
// HTTP handler and the shard queue — must not allocate when tracing is
// disabled. This pins the tentpole's "0 allocs/op added" guarantee on the
// server hot path; the matching fused-add guarantee lives in
// core.TestAccumulatorAddZeroAlloc.
func TestIngestEnqueueZeroAllocsWithTracingDisabled(t *testing.T) {
	if trace.Enabled() {
		t.Fatal("tracing unexpectedly enabled")
	}
	s := New(Config{Shards: 1, QueueDepth: 1 << 16})
	defer s.Close()
	a, _, err := s.Create("alloc", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(3), 64, -0.5, 0.5)
	if avg := testing.AllocsPerRun(200, func() {
		if err := a.AddFloatsTraced(xs, trace.Context{}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("traced enqueue with tracing disabled allocates %.2f/op, want 0", avg)
	}
}
