// Package stats provides the statistics used by the paper's experiments:
// running mean/standard deviation (for the Figure 1 error curves),
// histograms (Figure 2), least-squares linear fits (to verify the linear
// error growth claim of §II.A), parallel efficiency (Figures 5-8), and ULP
// distance for accuracy comparisons.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of observations with Welford's algorithm,
// giving numerically stable mean and variance without storing the samples.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll incorporates every element of xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// Merge folds another accumulator's observations into r using Chan et
// al.'s parallel variance combination, so per-worker statistics can be
// reduced without a second pass over the data.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := n1 + n2
	r.mean += delta * n2 / total
	r.m2 += o.m2 + delta*delta*n1*n2/total
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 for an empty set).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 for an empty set).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 for an empty set).
func (r *Running) Max() float64 { return r.max }

// Histogram bins observations into equal-width buckets over [Lo, Hi);
// values outside the range land in the saturating edge buckets, so no
// observation is dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	under  int64
	over   int64
}

// NewHistogram returns a histogram with bins equal-width buckets over
// [lo, hi). It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) x%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
		h.Counts[0]++
	case x >= h.Hi:
		h.over++
		h.Counts[len(h.Counts)-1]++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard the floating-point edge
			i--
		}
		h.Counts[i]++
	}
}

// Outliers returns how many observations fell below Lo and at/above Hi.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }

// Total returns the number of binned observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// LinearFit returns the least-squares line y = a + b*x through the points,
// plus the coefficient of determination r2. It panics if the slices differ
// in length or hold fewer than two points.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs >= 2 equal-length points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// Efficiency returns the strong-scaling efficiency t1 / (p * tp), the
// quantity plotted on the right-hand panels of Figures 5-8.
func Efficiency(t1, tp float64, p int) float64 {
	if tp <= 0 || p < 1 {
		return 0
	}
	return t1 / (float64(p) * tp)
}

// Speedup returns t1 / tp.
func Speedup(t1, tp float64) float64 {
	if tp <= 0 {
		return 0
	}
	return t1 / tp
}

// ULPDistance returns the number of representable float64 values between a
// and b (0 if equal, 1 if adjacent). It returns MaxInt64-ish saturation for
// NaN or differing signs at large magnitude; intended for near-equal
// comparisons in accuracy tables.
func ULPDistance(a, b float64) int64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxInt64
	}
	ia := orderedBits(a)
	ib := orderedBits(b)
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// orderedBits maps a float64 onto a monotone integer scale.
func orderedBits(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

// Median returns the median of xs (copying, not mutating). It panics on an
// empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	ys := make([]float64, len(xs))
	copy(ys, xs)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}
