package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.StdDev() != 0 {
		t.Error("zero value not neutral")
	}
	r.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got, want := r.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Variance() != 0 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("single-observation stats wrong")
	}
}

// Welford must match the naive two-pass formula.
func TestPropWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw [16]float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) < 2 {
			return true
		}
		var r Running
		r.AddAll(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(variance))
		return math.Abs(r.Mean()-mean) <= 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(r.Variance()-variance) <= 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	for _, v := range []float64{-0.9, -0.1, 0.1, 0.9, 0.99} {
		h.Add(v)
	}
	want := []int64{1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	// Edge saturation.
	h.Add(-5)
	h.Add(5)
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("outliers = %d/%d", under, over)
	}
	if h.Counts[0] != 2 || h.Counts[3] != 3 {
		t.Error("edge buckets did not saturate")
	}
	// Exactly Hi lands in the over bucket (half-open range).
	h2 := NewHistogram(0, 1, 2)
	h2.Add(1)
	if _, over := h2.Outliers(); over != 1 {
		t.Error("x == Hi should count as over")
	}
	if got := h2.BinCenter(0); got != 0.25 {
		t.Errorf("BinCenter(0) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram accepted")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestLinearFit(t *testing.T) {
	// Perfect line y = 2 + 3x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{2, 5, 8, 11, 14}
	a, b, r2 := LinearFit(xs, ys)
	if math.Abs(a-2) > 1e-12 || math.Abs(b-3) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = (%g, %g, %g), want (2, 3, 1)", a, b, r2)
	}
	// Noisy line still has r2 near 1.
	ys2 := []float64{2.1, 4.9, 8.05, 11.1, 13.9}
	_, b2, r22 := LinearFit(xs, ys2)
	if b2 < 2.5 || b2 > 3.5 || r22 < 0.99 {
		t.Errorf("noisy fit = (%g, %g)", b2, r22)
	}
	defer func() {
		if recover() == nil {
			t.Error("degenerate fit accepted")
		}
	}()
	LinearFit([]float64{1, 1}, []float64{2, 3})
}

func TestEfficiencyAndSpeedup(t *testing.T) {
	if got := Efficiency(8, 1, 8); got != 1 {
		t.Errorf("perfect efficiency = %g", got)
	}
	if got := Efficiency(8, 2, 8); got != 0.5 {
		t.Errorf("half efficiency = %g", got)
	}
	if got := Efficiency(1, 0, 4); got != 0 {
		t.Error("zero time must not divide")
	}
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup = %g", got)
	}
}

func TestULPDistance(t *testing.T) {
	if got := ULPDistance(1, 1); got != 0 {
		t.Errorf("equal: %d", got)
	}
	if got := ULPDistance(1, math.Nextafter(1, 2)); got != 1 {
		t.Errorf("adjacent: %d", got)
	}
	if got := ULPDistance(1, math.Nextafter(1, 0)); got != 1 {
		t.Errorf("adjacent down: %d", got)
	}
	if got := ULPDistance(0, math.Copysign(0, -1)); got != 0 {
		t.Errorf("+0 vs -0: %d", got)
	}
	if got := ULPDistance(math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64); got != 2 {
		t.Errorf("straddling zero: %d", got)
	}
	if got := ULPDistance(math.NaN(), 1); got != math.MaxInt64 {
		t.Error("NaN must saturate")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	xs := []float64{5, 1}
	Median(xs)
	if xs[0] != 5 {
		t.Error("Median mutated input")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty median accepted")
		}
	}()
	Median(nil)
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var whole Running
	whole.AddAll(xs)

	for _, split := range []int{1, 3, 4, 7} {
		var a, b Running
		a.AddAll(xs[:split])
		b.AddAll(xs[split:])
		a.Merge(&b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d", split, a.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("split %d: mean %g vs %g", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-12 {
			t.Errorf("split %d: var %g vs %g", split, a.Variance(), whole.Variance())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: min/max", split)
		}
	}
	// Merging into/out of empty accumulators.
	var empty, full Running
	full.AddAll(xs)
	snapshot := full
	full.Merge(&empty)
	if full != snapshot {
		t.Error("merging empty changed stats")
	}
	empty.Merge(&full)
	if empty.N() != full.N() || empty.Mean() != full.Mean() {
		t.Error("merge into empty failed")
	}
}
