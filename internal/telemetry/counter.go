package telemetry

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// numShards is the shard count for Counters: the smallest power of two
// covering GOMAXPROCS at process start, capped so a counter stays a few
// cache lines. Power-of-two lets shardIndex mask instead of mod.
var numShards = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// shard is one cache line of counter state. The padding keeps adjacent
// shards on distinct 64-byte lines so concurrent adders do not false-share.
type shard struct {
	n atomic.Uint64
	_ [56]byte
}

// shardIndex picks a shard for the calling goroutine. Go exposes no
// goroutine-local storage, so we hash the address of a stack variable:
// every goroutine has its own stack, so distinct goroutines land on
// well-spread indexes, and the cost is two ALU ops. The index only
// affects contention, never correctness — Value sums all shards.
func shardIndex() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((p >> 10) & uintptr(numShards-1))
}

// Counter is a monotonically increasing sharded counter. Add is lock-free:
// one atomic fetch-add on the caller's shard, preceded by the global
// enabled check. The zero value is unusable; create with NewCounter.
type Counter struct {
	name   string
	help   string
	shards []shard
}

// NewCounter registers (or returns the existing) counter with the given
// name in the default registry.
func NewCounter(name, help string) *Counter {
	return Default().NewCounter(name, help)
}

// NewCounter registers (or returns the existing) counter in r.
func (r *Registry) NewCounter(name, help string) *Counter {
	checkName(name)
	c := &Counter{name: name, help: help, shards: make([]shard, numShards)}
	return r.register(c).(*Counter)
}

// Name returns the metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Help returns the metric description.
func (c *Counter) Help() string {
	if c == nil {
		return ""
	}
	return c.help
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter. It is a no-op when c is nil, recording is
// disabled, or delta is zero.
func (c *Counter) Add(delta uint64) {
	if c == nil || delta == 0 || !enabled.Load() {
		return
	}
	c.shards[shardIndex()].n.Add(delta)
}

// Value returns the current total across all shards. The multi-shard read
// is not a single atomic snapshot; like the accumulators' Snapshot it is
// exact once writers have quiesced, and monotone-approximate otherwise.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Reset zeroes the counter; for tests. Must not race with Add if an exact
// zero is required.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}

func (c *Counter) writeProm(buf []byte) []byte {
	buf = appendPromHeader(buf, c.name, c.help, "counter")
	buf = append(buf, c.name...)
	buf = append(buf, ' ')
	buf = appendUint(buf, c.Value())
	return append(buf, '\n')
}

func (c *Counter) jsonValue() any { return c.Value() }

// Gauge is a value that can go up and down (queue depths, current widths,
// worker counts). It is a single atomic cell — gauges are set from slow
// paths, so sharding would only blur the read.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge registers (or returns the existing) gauge with the given name
// in the default registry.
func NewGauge(name, help string) *Gauge {
	return Default().NewGauge(name, help)
}

// NewGauge registers (or returns the existing) gauge in r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	checkName(name)
	g := &Gauge{name: name, help: help}
	return r.register(g).(*Gauge)
}

// Name returns the metric name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Help returns the metric description.
func (g *Gauge) Help() string {
	if g == nil {
		return ""
	}
	return g.help
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) writeProm(buf []byte) []byte {
	buf = appendPromHeader(buf, g.name, g.help, "gauge")
	buf = append(buf, g.name...)
	buf = append(buf, ' ')
	buf = appendInt(buf, g.Value())
	return append(buf, '\n')
}

func (g *Gauge) jsonValue() any { return g.Value() }
