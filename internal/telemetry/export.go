package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ---- text formatting helpers ----

func appendUint(buf []byte, v uint64) []byte { return strconv.AppendUint(buf, v, 10) }
func appendInt(buf []byte, v int64) []byte   { return strconv.AppendInt(buf, v, 10) }

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// appendPromHeader appends the # HELP / # TYPE preamble for a metric.
func appendPromHeader(buf []byte, name, help, kind string) []byte {
	if help != "" {
		buf = append(buf, "# HELP "...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(help)...)
		buf = append(buf, '\n')
	}
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, kind...)
	return append(buf, '\n')
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf []byte
	r.each(func(m Metric) { buf = m.writeProm(buf) })
	_, err := w.Write(buf)
	return err
}

// WriteJSON writes a JSON object mapping metric name to value: numbers
// for counters and gauges, {le, counts, sum, count} for histograms.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := make(map[string]any)
	r.each(func(m Metric) { snap[m.Name()] = m.jsonValue() })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// metricsHandler serves r in Prometheus text format, or JSON when the
// request asks for it (?format=json or an Accept: application/json
// header).
func (r *Registry) metricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Debug-handler extension point: packages that want an endpoint on every
// exporter listener (internal/trace mounts /debug/trace this way) register
// it here, keeping the dependency arrow pointed at telemetry.
var (
	debugMu       sync.Mutex
	debugHandlers = map[string]http.Handler{}
)

// RegisterDebugHandler mounts h at pattern on every Handler/Serve mux
// built afterwards. Registering the same pattern again replaces the
// handler (harmless for repeated package init in tests).
func RegisterDebugHandler(pattern string, h http.Handler) {
	debugMu.Lock()
	debugHandlers[pattern] = h
	debugMu.Unlock()
}

// Handler returns the exporter mux for the default registry: /metrics
// (Prometheus text, or JSON via ?format=json), /debug/vars (expvar), the
// /debug/pprof/ endpoints, and any registered debug handlers. It is
// exported so tests can drive the exporter with net/http/httptest without
// opening a socket.
func Handler() http.Handler { return handlerFor(defaultRegistry) }

func handlerFor(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.metricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	debugMu.Lock()
	for pattern, h := range debugHandlers {
		mux.Handle(pattern, h)
	}
	debugMu.Unlock()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "telemetry exporter\n\n/metrics\n/metrics?format=json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

func init() {
	// Mirror the registry into expvar so /debug/vars carries the same
	// snapshot alongside the stock cmdline/memstats vars.
	expvar.Publish("telemetry", expvar.Func(func() any {
		snap := make(map[string]any)
		defaultRegistry.each(func(m Metric) { snap[m.Name()] = m.jsonValue() })
		return snap
	}))
}

// Server is a running telemetry exporter.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	serveCh chan error // Serve's exit error, nil-or-ErrServerClosed on clean stop
	once    sync.Once
	err     error
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the exporter, waiting briefly for in-flight requests, and
// returns the first error from either the serve loop (a listener that died
// mid-run) or the shutdown itself. Close is idempotent.
func (s *Server) Close() error {
	s.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		shutdownErr := s.srv.Shutdown(ctx)
		serveErr := <-s.serveCh
		if serveErr == http.ErrServerClosed {
			serveErr = nil
		}
		if serveErr != nil {
			s.err = fmt.Errorf("telemetry: serve: %w", serveErr)
		} else if shutdownErr != nil {
			s.err = fmt.Errorf("telemetry: shutdown: %w", shutdownErr)
		}
	})
	return s.err
}

// Serve enables metric recording and starts the exporter on addr
// (e.g. "localhost:9090" or ":0" for an ephemeral port), returning the
// running server. The exporter serves the default registry.
func Serve(addr string) (*Server, error) { return ServeHandler(addr, Handler()) }

// ServeHandler is Serve with a caller-supplied handler, so a service can
// mount its own API alongside the exporter endpoints on one listener
// (cmd/hpsumd does exactly that). The server applies header/idle timeouts
// that bound slow-loris clients but deliberately sets no blanket read or
// write timeout: ingest bodies are streamed under per-frame deadlines at
// the application layer, and /debug/pprof/profile legitimately takes 30s.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	SetEnabled(true)
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}
	s := &Server{ln: ln, srv: srv, serveCh: make(chan error, 1)}
	go func() { s.serveCh <- srv.Serve(ln) }()
	return s, nil
}
