package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsRoundTrip drives the exporter through httptest: register
// metrics, record, scrape /metrics, and check the Prometheus text format
// line by line.
func TestMetricsRoundTrip(t *testing.T) {
	c := NewCounter("test_http_requests_total", "round-trip counter")
	g := NewGauge("test_http_inflight", "round-trip gauge")
	h := NewHistogram("test_http_seconds", "round-trip histogram", []float64{0.1, 1})
	c.Reset()
	h.Reset()
	withEnabled(t, func() {
		c.Add(3)
		g.Set(2)
		h.Observe(0.05)
		h.Observe(5)
	})

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# HELP test_http_requests_total round-trip counter",
		"# TYPE test_http_requests_total counter",
		"test_http_requests_total 3",
		"# TYPE test_http_inflight gauge",
		"test_http_inflight 2",
		`test_http_seconds_bucket{le="0.1"} 1`,
		`test_http_seconds_bucket{le="+Inf"} 2`,
		"test_http_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, out)
		}
	}

	// The instrumented hot-path metrics registered by the core package
	// imports are absent here (separate test binary), but every line must
	// still parse shape-wise: non-comment lines are "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestMetricsJSON(t *testing.T) {
	c := NewCounter("test_json_total", "json counter")
	c.Reset()
	withEnabled(t, func() { c.Add(7) })

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	for _, url := range []string{
		srv.URL + "/metrics?format=json",
		srv.URL + "/metrics", // via Accept header below
	} {
		req, _ := http.NewRequest("GET", url, nil)
		req.Header.Set("Accept", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]any
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		if got, ok := snap["test_json_total"].(float64); !ok || got != 7 {
			t.Errorf("GET %s: test_json_total = %v, want 7", url, snap["test_json_total"])
		}
	}
}

func TestDebugVarsAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// /debug/vars is the expvar endpoint: valid JSON carrying both the
	// stock vars and the mirrored telemetry snapshot.
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
	if _, ok := vars["telemetry"]; !ok {
		t.Error("/debug/vars missing the mirrored telemetry snapshot")
	}

	// /debug/pprof/ must serve the index and the heap profile.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

// TestServe exercises the real socket path: Serve on an ephemeral port
// must enable recording and serve /metrics until closed.
func TestServe(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(false)

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !Enabled() {
		t.Error("Serve did not enable recording")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("GET /metrics over TCP: %s, %d bytes", resp.Status, len(body))
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestServeHandler mounts a service mux alongside the exporter on one
// listener — the cmd/hpsumd composition — and checks both respond, the
// hardening timeouts are set, and Close stays idempotent and error-free.
func TestServeHandler(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	})
	mux.Handle("/", Handler())
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]int{"/v1/ping": 200, "/metrics": 200, "/debug/vars": 200} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
	if srv.srv.ReadHeaderTimeout == 0 || srv.srv.IdleTimeout == 0 || srv.srv.MaxHeaderBytes == 0 {
		t.Error("hardening timeouts not set on the exporter server")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// The listener is really gone.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("exporter still reachable after Close")
	}
}

// TestServeErrorPropagation: killing the listener out from under the serve
// loop must surface as an error from Close instead of vanishing in a
// discarded goroutine.
func TestServeErrorPropagation(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ln.Close() // simulate the listener dying mid-run
	// Give the serve loop a moment to observe the dead listener.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.serveCh) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err == nil {
		t.Error("Close swallowed the serve loop's listener error")
	}
}
