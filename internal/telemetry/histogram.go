package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one binary search over the (immutable) upper bounds, one atomic
// increment on the bucket, and one CAS loop folding the observation into
// the running sum. Buckets are chosen at construction and never change,
// so the read side needs no locking either.
type Histogram struct {
	name    string
	help    string
	upper   []float64       // ascending upper bounds; the +Inf bucket is implicit
	counts  []atomic.Uint64 // len(upper)+1: counts[i] observes v <= upper[i]
	sumBits atomic.Uint64   // math.Float64bits of the sum of observations
}

// NewHistogram registers (or returns the existing) histogram with the
// given name in the default registry. buckets are the ascending upper
// bounds; a final +Inf bucket is always added implicitly. It panics if
// buckets is empty, unsorted, or contains NaN/Inf.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default().NewHistogram(name, help, buckets)
}

// NewHistogram registers (or returns the existing) histogram in r.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	checkName(name)
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	for i, b := range upper {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bucket bound must be finite")
		}
		if i > 0 && b <= upper[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
	return r.register(h).(*Histogram)
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DurationBuckets is a general-purpose latency bucket set, in seconds,
// spanning 1µs to ~8s.
func DurationBuckets() []float64 {
	return ExponentialBuckets(1e-6, 2, 24)
}

// Name returns the metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Help returns the metric description.
func (h *Histogram) Help() string {
	if h == nil {
		return ""
	}
	return h.help
}

// Observe records v. Values on a bucket's upper bound count into that
// bucket (le semantics); values above every bound go to the +Inf bucket.
// NaN observations are dropped. No-op when h is nil or recording is off.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() || math.IsNaN(v) {
		return
	}
	// First bucket whose bound is >= v, i.e. the smallest le-bucket
	// containing v; len(upper) means the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency given in seconds (alias of Observe,
// for call-site clarity).
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and the per-bucket (non-cumulative)
// counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() (upper []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	upper = make([]float64, len(h.upper))
	copy(upper, h.upper)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return upper, counts
}

// Reset zeroes all buckets and the sum; for tests.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sumBits.Store(0)
}

func (h *Histogram) writeProm(buf []byte) []byte {
	buf = appendPromHeader(buf, h.name, h.help, "histogram")
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		buf = append(buf, h.name...)
		buf = append(buf, `_bucket{le="`...)
		buf = append(buf, le...)
		buf = append(buf, `"} `...)
		buf = appendUint(buf, cum)
		buf = append(buf, '\n')
	}
	buf = append(buf, h.name...)
	buf = append(buf, "_sum "...)
	buf = append(buf, formatFloat(h.Sum())...)
	buf = append(buf, '\n')
	buf = append(buf, h.name...)
	buf = append(buf, "_count "...)
	buf = appendUint(buf, cum)
	return append(buf, '\n')
}

func (h *Histogram) jsonValue() any {
	upper, counts := h.Buckets()
	les := make([]string, len(counts))
	for i := range counts {
		if i < len(upper) {
			les[i] = formatFloat(upper[i])
		} else {
			les[i] = "+Inf"
		}
	}
	return map[string]any{
		"le":     les,
		"counts": counts,
		"sum":    h.Sum(),
		"count":  h.Count(),
	}
}

// String summarizes the histogram for diagnostics.
func (h *Histogram) String() string {
	if h == nil {
		return "<nil histogram>"
	}
	return fmt.Sprintf("%s{count=%d sum=%g}", h.name, h.Count(), h.Sum())
}
