package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket
// semantics at the exact edges: a value equal to a bound lands in that
// bound's bucket, a value just above moves to the next, values above
// every bound land in +Inf, and negatives land in the first bucket whose
// bound covers them.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_bounds", "boundary test", []float64{0, 1, 10})
	withEnabled(t, func() {
		for _, v := range []float64{
			-5,                          // below every bound: le="0" bucket
			0,                           // exactly on the first bound: le="0"
			math.SmallestNonzeroFloat64, // just above 0: le="1"
			1,                           // exactly on a middle bound: le="1"
			math.Nextafter(1, 2),        // just above: le="10"
			10,                          // exactly on the last bound: le="10"
			10.5, math.Inf(1),           // above all bounds: +Inf bucket
			math.NaN(), // dropped entirely
		} {
			h.Observe(v)
		}
	})
	_, counts := h.Buckets()
	want := []uint64{2, 2, 2, 2} // le=0, le=1, le=10, +Inf
	if len(counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if got := h.Count(); got != 8 {
		t.Errorf("Count() = %d, want 8 (NaN must be dropped)", got)
	}
}

func TestHistogramSumAndConcurrency(t *testing.T) {
	const goroutines, observes = 8, 2000
	r := NewRegistry()
	h := r.NewHistogram("test_sum", "sum test", []float64{0.5})
	withEnabled(t, func() {
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				for i := 0; i < observes; i++ {
					h.Observe(0.25)
				}
			}()
		}
		wg.Wait()
	})
	if got, want := h.Count(), uint64(goroutines*observes); got != want {
		t.Fatalf("histogram lost observations: got %d, want %d", got, want)
	}
	// 0.25 is a power of two, so the CAS-folded sum is exact.
	if got, want := h.Sum(), 0.25*float64(goroutines*observes); got != want {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
}

func TestHistogramPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_expo", "exposition test", []float64{1, 2})
	withEnabled(t, func() {
		h.Observe(0.5)
		h.Observe(1.5)
		h.Observe(99)
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_expo histogram",
		`test_expo_bucket{le="1"} 1`,
		`test_expo_bucket{le="2"} 2`, // cumulative
		`test_expo_bucket{le="+Inf"} 3`,
		"test_expo_sum 101",
		"test_expo_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramConstructionPanics(t *testing.T) {
	r := NewRegistry()
	for name, buckets := range map[string][]float64{
		"test_empty":    {},
		"test_unsorted": {2, 1},
		"test_dup":      {1, 1},
		"test_nan":      {math.NaN()},
		"test_inf":      {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%s, %v) did not panic", name, buckets)
				}
			}()
			r.NewHistogram(name, "bad buckets", buckets)
		}()
	}
}
