package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live data)
// and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return f.Close()
}

// StartFromFlags wires the conventional command-line observability flags:
// when metricsAddr is nonempty it enables recording and starts the
// exporter there; when cpuProfile is nonempty it starts a CPU profile;
// when memProfile is nonempty a heap profile is written at stop time.
// The returned stop function (never nil) flushes the profiles and shuts
// the exporter down; callers should defer it immediately:
//
//	stop, err := telemetry.StartFromFlags(*metricsAddr, *cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
func StartFromFlags(metricsAddr, cpuProfile, memProfile string) (stop func(), err error) {
	var srv *Server
	var stopCPU func() error
	cleanup := func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			}
		}
		if memProfile != "" {
			if err := WriteHeapProfile(memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
			}
		}
		if srv != nil {
			_ = srv.Close()
		}
	}
	if metricsAddr != "" {
		srv, err = Serve(metricsAddr)
		if err != nil {
			return func() {}, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}
	if cpuProfile != "" {
		stopCPU, err = StartCPUProfile(cpuProfile)
		if err != nil {
			cleanup()
			return func() {}, err
		}
	}
	return cleanup, nil
}
