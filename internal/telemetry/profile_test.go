package telemetry

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartFromFlags runs the full flag wiring: exporter on an ephemeral
// port plus CPU and heap profiles, then checks both profile files are
// non-empty after stop.
func TestStartFromFlags(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)

	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartFromFlags("127.0.0.1:0", cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 1.0
	for i := 0; i < 1_000_000; i++ {
		x = x*1.0000001 + 1e-9
	}
	_ = x
	stop()

	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestStartFromFlagsNoop(t *testing.T) {
	stop, err := StartFromFlags("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be safe with nothing started
}

func TestStartFromFlagsBadAddr(t *testing.T) {
	stop, err := StartFromFlags("256.256.256.256:http", "", "")
	if err == nil {
		stop()
		t.Fatal("expected error for unlistenable address")
	}
	stop()
}
