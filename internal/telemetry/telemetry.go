// Package telemetry is a zero-dependency (stdlib-only) metrics and
// profiling layer for the summation hot paths. It provides sharded,
// cache-line-padded atomic Counters and Gauges, fixed-bucket Histograms
// with a lock-free observe path, a process-wide Registry with named
// lookup, and an opt-in HTTP exporter (Serve) speaking Prometheus text
// format and JSON, with expvar and net/http/pprof mounted alongside.
//
// Recording is globally gated: until SetEnabled(true) — which Serve and
// StartFromFlags call for you — every Inc/Add/Observe is an atomic load
// and a predicted branch, so uninstrumented runs pay almost nothing and
// the accumulated sums stay bit-identical with telemetry on or off (the
// instrumentation never touches accumulator state, only its own shards).
//
// All metric methods are nil-safe: calling them on a nil metric is a
// no-op, so packages may hold optional metric fields without guards.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide recording gate. The zero value (disabled)
// makes every hot-path record call an atomic load plus branch.
var enabled atomic.Bool

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns metric recording on or off and returns the previous
// state (convenient for tests: defer SetEnabled(SetEnabled(true))).
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Metric is the common interface of Counter, Gauge, and Histogram.
type Metric interface {
	// Name returns the registered metric name.
	Name() string
	// Help returns the one-line description.
	Help() string
	// writeProm appends the Prometheus text exposition of the metric.
	writeProm(buf []byte) []byte
	// jsonValue returns the value for the JSON exporter.
	jsonValue() any
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the package-level Default registry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]Metric
	order   []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// defaultRegistry is the process-wide registry used by the package-level
// constructors and by Serve.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds m under its name, panicking on a name collision with a
// different metric kind and returning the existing metric when one of the
// same kind is already registered (so repeated package init in tests is
// harmless).
func (r *Registry) register(m Metric) Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[m.Name()]; ok {
		if fmt.Sprintf("%T", old) != fmt.Sprintf("%T", m) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as a different kind", m.Name()))
		}
		return old
	}
	r.metrics[m.Name()] = m
	r.order = append(r.order, m.Name())
	return m
}

// Get returns the metric registered under name, or nil.
func (r *Registry) Get(name string) Metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics[name]
}

// Names returns all registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// each calls fn for every metric in sorted-name order (the order
// Prometheus clients conventionally expose).
func (r *Registry) each(fn func(m Metric)) {
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		if m := r.Get(name); m != nil {
			fn(m)
		}
	}
}

// validName reports whether name is a valid Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func checkName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}
