package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// withEnabled runs the test body with recording forced on, restoring the
// previous state afterwards.
func withEnabled(t *testing.T, body func()) {
	t.Helper()
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	body()
}

// TestCounterConcurrentExact is the concurrent-correctness test: N
// goroutines each performing M increments must sum exactly, under -race,
// regardless of how the shards interleave.
func TestCounterConcurrentExact(t *testing.T) {
	const goroutines, increments = 16, 10000
	r := NewRegistry()
	c := r.NewCounter("test_concurrent_total", "concurrency test")
	withEnabled(t, func() {
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer wg.Done()
				for i := 0; i < increments; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
	})
	if got, want := c.Value(), uint64(goroutines*increments); got != want {
		t.Fatalf("counter lost updates: got %d, want %d", got, want)
	}
}

func TestCounterDisabledAndNil(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_disabled_total", "gating test")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Errorf("disabled counter recorded %d increments", got)
	}
	// Nil metrics must be inert, not panic: packages may hold optional
	// metric fields with no guards.
	var nc *Counter
	nc.Inc()
	nc.Add(7)
	if nc.Value() != 0 || nc.Name() != "" {
		t.Error("nil counter not inert")
	}
	var ng *Gauge
	ng.Set(3)
	ng.Dec()
	if ng.Value() != 0 {
		t.Error("nil gauge not inert")
	}
	var nh *Histogram
	nh.Observe(1)
	if nh.Count() != 0 {
		t.Error("nil histogram not inert")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "gauge test")
	withEnabled(t, func() {
		g.Set(10)
		g.Add(5)
		g.Dec()
		if got := g.Value(); got != 14 {
			t.Errorf("gauge = %d, want 14", got)
		}
		g.Add(-20)
		if got := g.Value(); got != -6 {
			t.Errorf("gauge = %d, want -6", got)
		}
	})
}

func TestRegistryLookupAndReregister(t *testing.T) {
	r := NewRegistry()
	c1 := r.NewCounter("test_dup_total", "first")
	c2 := r.NewCounter("test_dup_total", "second registration returns the first")
	if c1 != c2 {
		t.Error("re-registering the same name returned a distinct counter")
	}
	if got := r.Get("test_dup_total"); got != Metric(c1) {
		t.Errorf("Get returned %v", got)
	}
	if got := r.Get("test_missing"); got != nil {
		t.Errorf("Get(missing) = %v, want nil", got)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "test_dup_total" {
		t.Errorf("Names() = %v", names)
	}
	// Re-registering under a different kind must panic loudly rather than
	// silently aliasing two metrics.
	defer func() {
		if recover() == nil {
			t.Error("cross-kind re-registration did not panic")
		}
	}()
	r.NewGauge("test_dup_total", "wrong kind")
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"core_addhp_total": true,
		"a:b_c9":           true,
		"_leading":         true,
		"":                 false,
		"9leading":         false,
		"has-dash":         false,
		"has space":        false,
		"unicodé":          false,
	} {
		if got := validName(name); got != want {
			t.Errorf("validName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSetEnabledReturnsPrevious(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	if !SetEnabled(true) {
		t.Error("SetEnabled did not report the previous enabled state")
	}
	if !Enabled() {
		t.Error("Enabled() false after SetEnabled(true)")
	}
}

// TestShardIndexInRange exercises the stack-address shard hash from many
// goroutines; every index must stay in range (distribution is best-effort).
func TestShardIndexInRange(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i := shardIndex(); i < 0 || i >= numShards {
				errs <- fmt.Errorf("shard index %d out of [0,%d)", i, numShards)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
