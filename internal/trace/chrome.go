package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Chrome trace-event export: the completed-span rings rendered in the
// Trace Event Format (the JSON that chrome://tracing and Perfetto's
// legacy loader consume). Every completed span becomes one "X" (complete)
// event with microsecond timestamps; in-flight spans become "i" (instant)
// events so a dump taken mid-stall still shows what was running.
//
// Alongside it lives the slow-op log: spans whose duration crossed
// SetSlowThreshold are copied into a dedicated ring and exported with
// explicit threshold flags, so "what was slow recently" does not require
// loading a full trace into a viewer.

// slowThreshold is the slow-op threshold in nanoseconds (0 disables the
// log). Default 100ms.
var slowThreshold atomic.Int64

func init() { slowThreshold.Store(int64(100 * time.Millisecond)) }

// SetSlowThreshold sets the duration at or above which a completed span is
// also recorded in the slow-op log (0 disables), returning the previous
// threshold.
func SetSlowThreshold(d time.Duration) time.Duration {
	return time.Duration(slowThreshold.Swap(int64(d)))
}

const slowRingSize = 1 << 9

var slowRing struct {
	pos   atomic.Uint64
	slots [slowRingSize]atomic.Pointer[Record]
}

func recordSlow(rec *Record) {
	i := slowRing.pos.Add(1) - 1
	slowRing.slots[i&(slowRingSize-1)].Store(rec)
}

func resetSlow() {
	slowRing.pos.Store(0)
	for i := range slowRing.slots {
		slowRing.slots[i].Store(nil)
	}
}

// SlowOps returns the slow-op log, oldest first.
func SlowOps() []*Record {
	var out []*Record
	n := slowRing.pos.Load()
	if n > slowRingSize {
		n = slowRingSize
	}
	for i := uint64(0); i < n; i++ {
		if rec := slowRing.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func toChromeEvent(rec *Record, ph string) chromeEvent {
	args := map[string]any{
		"trace":  fmt.Sprintf("%016x", rec.TraceID),
		"span":   fmt.Sprintf("%016x", rec.SpanID),
		"parent": fmt.Sprintf("%016x", rec.Parent),
	}
	for _, a := range rec.AttrList() {
		if a.Str != "" {
			args[a.Key] = a.Str
		} else {
			args[a.Key] = a.Int
		}
	}
	if rec.Slow {
		args["slow"] = true
	}
	ev := chromeEvent{
		Name: rec.Name,
		Cat:  "span",
		Ph:   ph,
		Ts:   float64(rec.Start) / 1e3,
		Pid:  1,
		Tid:  rec.Shard,
		ID:   strconv.FormatUint(rec.TraceID, 16),
		Args: args,
	}
	if ph == "X" {
		ev.Dur = float64(rec.Dur) / 1e3
	}
	if ph == "i" {
		ev.S = "t" // thread-scoped instant
	}
	return ev
}

// WriteChromeTrace writes every completed span (plus in-flight spans as
// instant events) in Chrome trace-event JSON, loadable by Perfetto and
// chrome://tracing.
func WriteChromeTrace(w io.Writer) error {
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, rec := range Snapshot() {
		ct.TraceEvents = append(ct.TraceEvents, toChromeEvent(rec, "X"))
	}
	for _, rec := range InFlight() {
		ct.TraceEvents = append(ct.TraceEvents, toChromeEvent(rec, "i"))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// slowEntry is one slow-op log line as served by the handler.
type slowEntry struct {
	Name        string  `json:"name"`
	Trace       string  `json:"trace"`
	Span        string  `json:"span"`
	StartNS     int64   `json:"start_ns"`
	DurMS       float64 `json:"dur_ms"`
	ThresholdMS float64 `json:"threshold_ms"`
	Exceeded    bool    `json:"threshold_exceeded"`
	Attrs       []Attr  `json:"attrs,omitempty"`
}

// writeSlowLog writes the slow-op log as JSON.
func writeSlowLog(w io.Writer) error {
	th := float64(slowThreshold.Load()) / 1e6
	out := struct {
		ThresholdMS float64     `json:"threshold_ms"`
		SlowOps     []slowEntry `json:"slow_ops"`
	}{ThresholdMS: th, SlowOps: []slowEntry{}}
	for _, rec := range SlowOps() {
		out.SlowOps = append(out.SlowOps, slowEntry{
			Name:        rec.Name,
			Trace:       fmt.Sprintf("%016x", rec.TraceID),
			Span:        fmt.Sprintf("%016x", rec.SpanID),
			StartNS:     rec.Start,
			DurMS:       float64(rec.Dur) / 1e6,
			ThresholdMS: th,
			Exceeded:    true,
			Attrs:       rec.AttrList(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the trace exporter:
//
//	/debug/trace            Chrome trace-event JSON (Perfetto-loadable)
//	/debug/trace?view=slow  the slow-op log with threshold flags
//	/debug/trace?view=flight  the flight-recorder snapshot (reason "http")
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Query().Get("view") {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w)
		case "slow":
			w.Header().Set("Content-Type", "application/json")
			_ = writeSlowLog(w)
		case "flight":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteDump(w, "http", req.RemoteAddr)
		default:
			http.Error(w, "unknown view (want chrome, slow, or flight)", http.StatusBadRequest)
		}
	})
}

func init() {
	// Mount /debug/trace on every telemetry exporter listener (hpsumd's
	// single-listener layout included) without telemetry importing trace.
	telemetry.RegisterDebugHandler("/debug/trace", Handler())
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the invariants Perfetto's loader cares about: a traceEvents array whose
// entries carry a name, a known phase, and non-negative timestamps (and
// durations for complete events). It returns the event count.
func ValidateChromeTrace(data []byte) (int, error) {
	var ct struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		return 0, fmt.Errorf("trace: chrome trace is not valid JSON: %w", err)
	}
	if ct.TraceEvents == nil {
		return 0, fmt.Errorf("trace: chrome trace has no traceEvents array")
	}
	known := map[string]bool{"X": true, "B": true, "E": true, "i": true, "I": true,
		"C": true, "M": true, "b": true, "e": true, "n": true}
	for i, ev := range ct.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d has no name", i)
		}
		if !known[ev.Ph] {
			return 0, fmt.Errorf("trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return 0, fmt.Errorf("trace: event %d has missing or negative ts", i)
		}
		if ev.Ph == "X" && ev.Dur != nil && *ev.Dur < 0 {
			return 0, fmt.Errorf("trace: event %d has negative dur", i)
		}
	}
	return len(ct.TraceEvents), nil
}
