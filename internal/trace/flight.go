package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

// Flight recorder: an always-on, bounded ring of recent events per
// subsystem. Unlike spans it is NOT gated on Enabled() — events are only
// recorded from cold paths (backpressure rejections, retransmissions,
// watchdog trips, crashes, snapshots), so the recorder costs nothing on
// the summation hot loops while still holding the last moments before a
// failure. WriteDump serializes the whole picture — recent events, queue
// depths (every telemetry gauge), in-flight spans, the slow-op log — as a
// schema-versioned JSON snapshot; TripDump writes it to the configured
// path when a watchdog fires, a fault crashes a rank, or a server 5xx
// escapes, and a StartFlightDump flusher goroutine does the same on
// SIGQUIT.

// DumpSchema versions the flight-recorder dump format.
const DumpSchema = "repro/flight-recorder/v1"

// eventRingSize bounds each subsystem's recent-event ring.
const eventRingSize = 1 << 9

// Event is one flight-recorder entry.
type Event struct {
	Time      int64  `json:"time_ns"`
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Attrs     []Attr `json:"attrs,omitempty"`
}

// eventRec is the immutable stored form (fixed-size attrs).
type eventRec struct {
	time   int64
	name   string
	nattrs int
	attrs  [maxAttrs]Attr
}

// Ring is one subsystem's flight-recorder ring. Obtain one with
// Subsystem; Event is lock-free and always on.
type Ring struct {
	name  string
	pos   atomic.Uint64
	slots [eventRingSize]atomic.Pointer[eventRec]
}

var (
	subsMu sync.Mutex
	subs   = map[string]*Ring{}
)

// Subsystem returns (creating if needed) the flight-recorder ring named
// name. Packages call it once at init and keep the handle.
func Subsystem(name string) *Ring {
	subsMu.Lock()
	defer subsMu.Unlock()
	if r, ok := subs[name]; ok {
		return r
	}
	r := &Ring{name: name}
	subs[name] = r
	return r
}

// Event records one event with its attributes. It is always on, bounded,
// and lock-free: one allocation, one atomic add, one pointer store.
func (r *Ring) Event(name string, attrs ...Attr) {
	if r == nil {
		return
	}
	rec := &eventRec{time: time.Now().UnixNano(), name: name}
	for _, a := range attrs {
		if rec.nattrs >= maxAttrs {
			break
		}
		rec.attrs[rec.nattrs] = a
		rec.nattrs++
	}
	i := r.pos.Add(1) - 1
	r.slots[i&(eventRingSize-1)].Store(rec)
}

// Events returns the ring's recent events, oldest first.
func (r *Ring) Events() []Event {
	n := r.pos.Load()
	if n > eventRingSize {
		n = eventRingSize
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := r.slots[i].Load()
		if rec == nil {
			continue
		}
		ev := Event{Time: rec.time, Subsystem: r.name, Name: rec.name}
		if rec.nattrs > 0 {
			ev.Attrs = append([]Attr(nil), rec.attrs[:rec.nattrs]...)
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Reset clears the ring (for tests).
func (r *Ring) Reset() {
	r.pos.Store(0)
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
}

// dumpSpan is a span record as serialized into dumps.
type dumpSpan struct {
	Trace   string  `json:"trace"`
	Span    string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	StartNS int64   `json:"start_ns"`
	DurMS   float64 `json:"dur_ms"` // -1 when still in flight
	Attrs   []Attr  `json:"attrs,omitempty"`
}

func toDumpSpan(rec *Record) dumpSpan {
	d := dumpSpan{
		Trace:   fmt.Sprintf("%016x", rec.TraceID),
		Span:    fmt.Sprintf("%016x", rec.SpanID),
		Name:    rec.Name,
		StartNS: rec.Start,
		DurMS:   float64(rec.Dur) / 1e6,
		Attrs:   rec.AttrList(),
	}
	if rec.Parent != 0 {
		d.Parent = fmt.Sprintf("%016x", rec.Parent)
	}
	if rec.Dur < 0 {
		d.DurMS = -1
	}
	return d
}

// Dump is the parsed form of a flight-recorder snapshot; WriteDump emits
// it and ValidateDump checks one.
type Dump struct {
	Schema     string             `json:"schema"`
	Reason     string             `json:"reason"`
	Detail     string             `json:"detail,omitempty"`
	WrittenAt  string             `json:"written_at"`
	Goroutines int                `json:"goroutines"`
	Gauges     map[string]int64   `json:"gauges"`
	Subsystems map[string][]Event `json:"subsystems"`
	InFlight   []dumpSpan         `json:"inflight_spans"`
	SlowOps    []dumpSpan         `json:"slow_ops"`
}

// WriteDump writes the flight-recorder snapshot as schema-versioned JSON:
// why it was taken, every telemetry gauge (queue depths included), every
// subsystem's recent events, the spans in flight at the moment of the
// dump, and the slow-op log.
func WriteDump(w io.Writer, reason, detail string) error {
	d := Dump{
		Schema:     DumpSchema,
		Reason:     reason,
		Detail:     detail,
		WrittenAt:  time.Now().UTC().Format(time.RFC3339Nano),
		Goroutines: runtime.NumGoroutine(),
		Gauges:     map[string]int64{},
		Subsystems: map[string][]Event{},
		InFlight:   []dumpSpan{},
		SlowOps:    []dumpSpan{},
	}
	reg := telemetry.Default()
	for _, name := range reg.Names() {
		if g, ok := reg.Get(name).(*telemetry.Gauge); ok {
			d.Gauges[name] = g.Value()
		}
	}
	subsMu.Lock()
	rings := make([]*Ring, 0, len(subs))
	for _, r := range subs {
		rings = append(rings, r)
	}
	subsMu.Unlock()
	for _, r := range rings {
		d.Subsystems[r.name] = r.Events()
	}
	for _, rec := range InFlight() {
		d.InFlight = append(d.InFlight, toDumpSpan(rec))
	}
	for _, rec := range SlowOps() {
		d.SlowOps = append(d.SlowOps, toDumpSpan(rec))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ValidateDump parses data as a flight-recorder dump and verifies its
// schema tag and structural invariants, returning the parsed dump.
func ValidateDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("trace: dump is not valid JSON: %w", err)
	}
	if d.Schema != DumpSchema {
		return nil, fmt.Errorf("trace: dump schema %q, want %q", d.Schema, DumpSchema)
	}
	if d.Reason == "" {
		return nil, fmt.Errorf("trace: dump has no reason")
	}
	if _, err := time.Parse(time.RFC3339Nano, d.WrittenAt); err != nil {
		return nil, fmt.Errorf("trace: dump written_at: %w", err)
	}
	if d.Subsystems == nil {
		return nil, fmt.Errorf("trace: dump has no subsystems object")
	}
	for name, evs := range d.Subsystems {
		for i, ev := range evs {
			if ev.Name == "" {
				return nil, fmt.Errorf("trace: subsystem %q event %d has no name", name, i)
			}
		}
	}
	return &d, nil
}

// Dump-on-trip wiring. SetDumpPath configures where TripDump writes; the
// empty path (the default) disables trip dumps entirely, so library code
// can call TripDump unconditionally.
var (
	dumpMu    sync.Mutex
	dumpPath  string
	dumpCount atomic.Uint64
)

// SetDumpPath sets (or, with "", clears) the file trip dumps are written
// to and returns the previous path.
func SetDumpPath(path string) string {
	dumpMu.Lock()
	defer dumpMu.Unlock()
	prev := dumpPath
	dumpPath = path
	return prev
}

// DumpCount returns how many trip dumps have been written (for tests).
func DumpCount() uint64 { return dumpCount.Load() }

// TripDump writes a flight-recorder dump to the configured path, tagged
// with the trip reason (e.g. "stall-watchdog", "crash", "server-5xx").
// It is synchronous — trips happen on failure paths where losing the dump
// to a fast exit would defeat the point — and serialized, with the last
// trip winning the file. A no-op when no dump path is configured.
func TripDump(reason, detail string) {
	dumpMu.Lock()
	path := dumpPath
	dumpMu.Unlock()
	if path == "" {
		return
	}
	if err := writeDumpFile(path, reason, detail); err != nil {
		fmt.Fprintf(os.Stderr, "trace: flight dump: %v\n", err)
		return
	}
	dumpCount.Add(1)
	fmt.Fprintf(os.Stderr, "trace: flight-recorder dump (%s) written to %s\n", reason, path)
}

func writeDumpFile(path, reason, detail string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDump(f, reason, detail); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartFlightDump arms the flight-recorder flusher: trip dumps go to path
// (also installed via SetDumpPath), and a flusher goroutine writes a dump
// on every SIGQUIT — to path when set, else to stderr — without killing
// the process. The returned stop function releases the signal handler and
// terminates the flusher goroutine; callers should defer it.
func StartFlightDump(path string) (stop func()) {
	SetDumpPath(path)
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGQUIT)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			case <-sigCh:
				if path == "" {
					if err := WriteDump(os.Stderr, "SIGQUIT", ""); err != nil {
						fmt.Fprintf(os.Stderr, "trace: flight dump: %v\n", err)
					}
					continue
				}
				if err := writeDumpFile(path, "SIGQUIT", ""); err != nil {
					fmt.Fprintf(os.Stderr, "trace: flight dump: %v\n", err)
					continue
				}
				dumpCount.Add(1)
				fmt.Fprintf(os.Stderr, "trace: flight-recorder dump (SIGQUIT) written to %s\n", path)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(sigCh)
			close(done)
			<-exited
		})
	}
}
