// Package trace is a zero-dependency (stdlib-only) tracing layer for the
// summation pipeline, built in the style of internal/telemetry: recording
// is off by default, every hot-path call is gated on one atomic load, and
// the instrumentation never touches accumulator state, so sums stay
// bit-identical with tracing on or off.
//
// Two facilities live here:
//
//   - Spans: when enabled (and sampled), code brackets operations in
//     Span values carrying a (trace id, span id, parent span) context.
//     Completed spans land in lock-free sharded ring buffers; the context
//     travels across process-internal boundaries (shard queues) and wire
//     boundaries (internal/server ingest frames, internal/mpi message
//     headers), so one ingest frame can be followed client → shard queue →
//     BatchAccumulator fold → merge, and an AllreduceFT round through every
//     rank including retransmits and recovery. Export as Chrome
//     trace-event JSON via WriteChromeTrace (chrome.go).
//
//   - Flight recorder: an always-on, bounded, per-subsystem ring of recent
//     events (flight.go), dumped as a schema-versioned JSON snapshot on
//     SIGQUIT, stall-watchdog trips, injected crashes, or server 5xx — the
//     forensic record of what the system was doing when it stalled.
//
// Ring writes are lock-free: a slot is claimed with one atomic add and
// published with one atomic pointer store, so recording in a hot loop
// never blocks readers or other writers. Records are immutable after
// publication, which is what makes concurrent snapshots race-free.
package trace

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled is the process-wide span-recording gate. The zero value
// (disabled) makes every Start/End an atomic load plus a predicted branch,
// with zero allocations.
var enabled atomic.Bool

// Enabled reports whether span recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns span recording on or off and returns the previous
// state (convenient for tests: defer SetEnabled(SetEnabled(true))).
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// sampleEvery is the trace sampling stride: NewTrace starts recording 1 of
// every sampleEvery traces. 1 (the default) records everything.
var (
	sampleEvery   atomic.Uint64
	sampleCounter atomic.Uint64
)

func init() { sampleEvery.Store(1) }

// SetSampling records 1 in every n new traces (n <= 1 records all) and
// returns the previous stride. Sampling is decided once per trace at
// NewTrace, so a sampled trace keeps every one of its spans.
func SetSampling(n uint64) uint64 {
	if n < 1 {
		n = 1
	}
	return sampleEvery.Swap(n)
}

// idState seeds span/trace id generation; ids are splitmix64 outputs of a
// process-unique counter, so they are well-spread and never zero-colliding
// in practice without needing crypto randomness.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newID() uint64 {
	for {
		if id := splitmix64(idState.Add(1)); id != 0 {
			return id
		}
	}
}

// Context identifies a position in a trace: the trace it belongs to and
// the span that is current there. The zero value is invalid (not traced)
// and makes every operation on it free. It is 16 bytes and copies by
// value across goroutines, queues, and wire frames.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// NewTrace opens a new trace and returns its root context (SpanID zero:
// the first Start under it becomes the root span). It returns the invalid
// Context when tracing is disabled or this trace lost the sampling draw.
func NewTrace() Context {
	if !enabled.Load() {
		return Context{}
	}
	if n := sampleEvery.Load(); n > 1 && sampleCounter.Add(1)%n != 0 {
		return Context{}
	}
	return Context{TraceID: newID()}
}

// Attr is one key/value annotation on a span or flight event. Str takes
// precedence when non-empty; otherwise the value is Int.
type Attr struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Int int64  `json:"int"`
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v} }

// maxAttrs bounds per-record annotations so records stay fixed-size.
const maxAttrs = 6

// Record is one completed (or in-flight) span as stored in the rings.
// Records are immutable once published; Dur is -1 on in-flight records.
type Record struct {
	TraceID uint64 `json:"trace"`
	SpanID  uint64 `json:"span"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Start   int64  `json:"start_ns"` // Unix nanoseconds
	Dur     int64  `json:"dur_ns"`   // -1 while in flight
	Shard   int    `json:"shard"`
	Slow    bool   `json:"slow,omitempty"`

	NAttrs int            `json:"-"`
	Attrs  [maxAttrs]Attr `json:"-"`
}

// AttrList returns the record's attributes as a slice (for JSON export).
func (r *Record) AttrList() []Attr { return r.Attrs[:r.NAttrs] }

// Span is an in-progress operation. The zero value (and any span started
// from an invalid context) is inert: all methods are no-ops. Spans are
// values; pass them down the stack, not across goroutines — hand the
// Context() across instead and Start a child on the other side.
type Span struct {
	ctx    Context // this span's own (trace, span) identity
	parent uint64
	name   string
	start  time.Time
	shard  int
	slot   int // in-flight table slot, -1 if untracked
	nattrs int
	attrs  [maxAttrs]Attr
}

// numShards mirrors telemetry's sharding: the smallest power of two
// covering GOMAXPROCS at start, capped at 64.
var numShards = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// shardIndex hashes the address of a stack variable, the same
// goroutine-spreading trick telemetry's counters use.
func shardIndex() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((p >> 10) & uintptr(numShards-1))
}

// ringSize is the per-shard completed-span capacity (power of two).
const ringSize = 1 << 12

// activeSlots bounds the per-shard in-flight span table.
const activeSlots = 64

// ring is one shard's records: a claimed-by-atomic-add circular buffer of
// completed spans plus a small table of in-flight spans.
type ring struct {
	pos    atomic.Uint64
	slots  [ringSize]atomic.Pointer[Record]
	active [activeSlots]atomic.Pointer[Record]
}

var rings = func() []*ring {
	rs := make([]*ring, numShards)
	for i := range rs {
		rs[i] = &ring{}
	}
	return rs
}()

// dropped counts spans whose in-flight slot could not be claimed (table
// full); they are still recorded at End, only invisible to InFlight.
var droppedActive atomic.Uint64

// Start opens a span named name as a child of parent. An invalid parent
// yields an inert span: to root a new trace, pass NewTrace()'s context.
func Start(parent Context, name string) Span {
	if !parent.Valid() || !enabled.Load() {
		return Span{}
	}
	sp := Span{
		ctx:    Context{TraceID: parent.TraceID, SpanID: newID()},
		parent: parent.SpanID,
		name:   name,
		start:  time.Now(),
		shard:  shardIndex(),
		slot:   -1,
	}
	// Publish an in-flight record so dumps can show what was running.
	r := rings[sp.shard]
	inflight := &Record{
		TraceID: sp.ctx.TraceID, SpanID: sp.ctx.SpanID, Parent: sp.parent,
		Name: name, Start: sp.start.UnixNano(), Dur: -1, Shard: sp.shard,
	}
	for i := range r.active {
		if r.active[i].CompareAndSwap(nil, inflight) {
			sp.slot = i
			break
		}
	}
	if sp.slot < 0 {
		droppedActive.Add(1)
	}
	return sp
}

// StartRoot opens a new (sampled) trace with name as its root span.
func StartRoot(name string) Span { return Start(NewTrace(), name) }

// Context returns the span's own context, for parenting children or
// propagating across a queue or wire boundary. Invalid on inert spans.
func (s *Span) Context() Context { return s.ctx }

// Attr annotates the span. Attributes beyond the fixed capacity are
// dropped silently.
func (s *Span) Attr(a Attr) {
	if !s.ctx.Valid() || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = a
	s.nattrs++
}

// End completes the span: the finished record is published to the shard's
// ring (and the slow-op log when it crossed the threshold), and the
// in-flight slot is released. End on an inert or already-ended span is a
// no-op.
func (s *Span) End() {
	if !s.ctx.Valid() {
		return
	}
	dur := time.Since(s.start).Nanoseconds()
	rec := &Record{
		TraceID: s.ctx.TraceID, SpanID: s.ctx.SpanID, Parent: s.parent,
		Name: s.name, Start: s.start.UnixNano(), Dur: dur, Shard: s.shard,
		NAttrs: s.nattrs, Attrs: s.attrs,
	}
	if th := slowThreshold.Load(); th > 0 && dur >= th {
		rec.Slow = true
		recordSlow(rec)
	}
	r := rings[s.shard]
	if s.slot >= 0 {
		r.active[s.slot].Store(nil)
	}
	i := r.pos.Add(1) - 1
	r.slots[i&(ringSize-1)].Store(rec)
	s.ctx = Context{} // make double-End inert
}

// Snapshot returns the completed spans currently held in the rings,
// oldest first by start time. The returned records are shared immutable
// values; callers must not modify them.
func Snapshot() []*Record {
	var out []*Record
	for _, r := range rings {
		n := r.pos.Load()
		if n > ringSize {
			n = ringSize
		}
		for i := uint64(0); i < n; i++ {
			if rec := r.slots[i].Load(); rec != nil {
				out = append(out, rec)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// InFlight returns the spans started but not yet ended, oldest first.
func InFlight() []*Record {
	var out []*Record
	for _, r := range rings {
		for i := range r.active {
			if rec := r.active[i].Load(); rec != nil {
				out = append(out, rec)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset clears every span ring, the in-flight tables, and the slow-op log
// (for tests). It must not race with concurrent Start/End if an exact
// empty state is required.
func Reset() {
	for _, r := range rings {
		r.pos.Store(0)
		for i := range r.slots {
			r.slots[i].Store(nil)
		}
		for i := range r.active {
			r.active[i].Store(nil)
		}
	}
	resetSlow()
}
