package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// withTracing enables span recording for one test and restores all global
// trace state afterwards (the package state is process-wide, like
// telemetry's).
func withTracing(t *testing.T) {
	t.Helper()
	prev := SetEnabled(true)
	prevSample := SetSampling(1)
	Reset()
	t.Cleanup(func() {
		SetEnabled(prev)
		SetSampling(prevSample)
		Reset()
	})
}

func TestSpanLifecycleAndParenting(t *testing.T) {
	withTracing(t)
	root := StartRoot("root")
	if !root.Context().Valid() {
		t.Fatal("root context invalid with tracing enabled")
	}
	child := Start(root.Context(), "child")
	child.Attr(Int("k", 7))
	child.Attr(Str("s", "v"))
	child.End()
	root.End()

	recs := Snapshot()
	if len(recs) != 2 {
		t.Fatalf("snapshot has %d records, want 2", len(recs))
	}
	byName := map[string]*Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	r, c := byName["root"], byName["child"]
	if r == nil || c == nil {
		t.Fatalf("missing records: %v", byName)
	}
	if c.TraceID != r.TraceID {
		t.Fatalf("child trace %x, root trace %x", c.TraceID, r.TraceID)
	}
	if c.Parent != r.SpanID {
		t.Fatalf("child parent %x, root span %x", c.Parent, r.SpanID)
	}
	if got := c.AttrList(); len(got) != 2 || got[0].Int != 7 || got[1].Str != "v" {
		t.Fatalf("child attrs %v", got)
	}
	if c.Dur < 0 || r.Dur < 0 {
		t.Fatalf("completed spans have negative durations: %d %d", c.Dur, r.Dur)
	}
	if len(InFlight()) != 0 {
		t.Fatalf("in-flight table not empty: %v", InFlight())
	}
}

func TestDisabledAndInertSpansAreFree(t *testing.T) {
	Reset()
	if prev := SetEnabled(false); prev {
		defer SetEnabled(true)
	}
	if NewTrace().Valid() {
		t.Fatal("NewTrace valid while disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartRoot("off")
		sp.Attr(Int("k", 1))
		child := Start(sp.Context(), "child")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing costs %v allocs/op, want 0", allocs)
	}
	if n := len(Snapshot()); n != 0 {
		t.Fatalf("disabled tracing recorded %d spans", n)
	}

	// Double-End and zero-value spans are no-ops.
	var zero Span
	zero.End()
	zero.Attr(Int("x", 1))
	SetEnabled(true)
	defer SetEnabled(false)
	sp := StartRoot("once")
	sp.End()
	sp.End()
	if n := len(Snapshot()); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
	Reset()
}

func TestSampling(t *testing.T) {
	withTracing(t)
	SetSampling(4)
	sampled := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if NewTrace().Valid() {
			sampled++
		}
	}
	if want := trials / 4; sampled != want {
		t.Fatalf("sampled %d of %d traces at stride 4, want %d", sampled, trials, want)
	}
	// A sampled-out trace must yield fully inert spans.
	SetSampling(1 << 62)
	sp := Start(NewTrace(), "dropped")
	sp.End()
}

func TestSpanRingWraps(t *testing.T) {
	withTracing(t)
	const extra = 512
	for i := 0; i < ringSize+extra; i++ {
		sp := StartRoot("wrap")
		sp.End()
	}
	n := len(Snapshot())
	if n == 0 || n > ringSize*numShards {
		t.Fatalf("snapshot has %d records after wrap, want (0, %d]", n, ringSize*numShards)
	}
}

func TestConcurrentRecordingIsRaceFree(t *testing.T) {
	withTracing(t)
	ring := Subsystem("trace-test-race")
	ring.Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				sp := StartRoot("race")
				child := Start(sp.Context(), "race-child")
				child.Attr(Int("i", int64(i)))
				child.End()
				sp.End()
				ring.Event("evt", Int("w", int64(w)))
			}
		}(w)
	}
	wg.Add(1)
	go func() { // concurrent readers against the writers above
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			Snapshot()
			InFlight()
			ring.Events()
			var buf bytes.Buffer
			_ = WriteChromeTrace(&buf)
			_ = WriteDump(&buf, "race", "")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestFlightRingAlwaysOnAndWraps(t *testing.T) {
	// The flight recorder is NOT gated on Enabled().
	Reset()
	SetEnabled(false)
	ring := Subsystem("trace-test-flight")
	ring.Reset()
	for i := 0; i < eventRingSize+100; i++ {
		ring.Event("e", Int("i", int64(i)))
	}
	evs := ring.Events()
	if len(evs) != eventRingSize {
		t.Fatalf("ring holds %d events, want %d", len(evs), eventRingSize)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events not sorted oldest-first at %d", i)
		}
	}
	if Subsystem("trace-test-flight") != ring {
		t.Fatal("Subsystem is not idempotent")
	}
}

func TestDumpRoundTripAndValidation(t *testing.T) {
	withTracing(t)
	Subsystem("trace-test-dump").Reset()
	Subsystem("trace-test-dump").Event("boom", Str("edge", "1->0"), Int("tag", 9))
	open := StartRoot("still-running") // must appear as in-flight
	defer open.End()
	done := Start(open.Context(), "finished")
	done.End()

	var buf bytes.Buffer
	if err := WriteDump(&buf, "stall-watchdog", "rank 0 <- rank 1 (tag 9)"); err != nil {
		t.Fatal(err)
	}
	d, err := ValidateDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != DumpSchema || d.Reason != "stall-watchdog" {
		t.Fatalf("schema %q reason %q", d.Schema, d.Reason)
	}
	evs := d.Subsystems["trace-test-dump"]
	if len(evs) != 1 || evs[0].Name != "boom" || evs[0].Attrs[0].Str != "1->0" {
		t.Fatalf("subsystem events %+v", evs)
	}
	foundInFlight := false
	for _, s := range d.InFlight {
		if s.Name == "still-running" && s.DurMS == -1 {
			foundInFlight = true
		}
	}
	if !foundInFlight {
		t.Fatalf("in-flight span missing from dump: %+v", d.InFlight)
	}

	// Rejections: bad JSON, wrong schema, missing reason, bad timestamp.
	for _, bad := range []string{
		`{`,
		`{"schema":"other/v9","reason":"x","written_at":"2026-01-01T00:00:00Z","subsystems":{}}`,
		`{"schema":"` + DumpSchema + `","written_at":"2026-01-01T00:00:00Z","subsystems":{}}`,
		`{"schema":"` + DumpSchema + `","reason":"x","written_at":"not-a-time","subsystems":{}}`,
		`{"schema":"` + DumpSchema + `","reason":"x","written_at":"2026-01-01T00:00:00Z"}`,
	} {
		if _, err := ValidateDump([]byte(bad)); err == nil {
			t.Errorf("accepted invalid dump %s", bad)
		}
	}
}

func TestTripDump(t *testing.T) {
	withTracing(t)
	path := filepath.Join(t.TempDir(), "flight.json")
	prev := SetDumpPath(path)
	defer SetDumpPath(prev)

	Subsystem("trace-test-trip").Event("trip-evt")
	before := DumpCount()
	TripDump("crash", "rank 1 crashed")
	if DumpCount() != before+1 {
		t.Fatal("TripDump did not count")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ValidateDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "crash" || d.Detail != "rank 1 crashed" {
		t.Fatalf("reason %q detail %q", d.Reason, d.Detail)
	}

	// With no path configured, TripDump is a silent no-op.
	SetDumpPath("")
	TripDump("crash", "nowhere to go")
	if DumpCount() != before+1 {
		t.Fatal("pathless TripDump wrote a dump")
	}
}

func TestChromeTraceExportAndValidation(t *testing.T) {
	withTracing(t)
	root := StartRoot("chrome-root")
	child := Start(root.Context(), "chrome-child")
	child.Attr(Int("values", 42))
	child.End()
	root.End()
	open := StartRoot("chrome-open")
	defer open.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("%d trace events, want 3 (2 complete + 1 instant)", n)
	}
	// The instant event for the in-flight span must be phase "i".
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	phases := map[string]string{}
	for _, ev := range ct.TraceEvents {
		phases[ev["name"].(string)] = ev["ph"].(string)
	}
	if phases["chrome-child"] != "X" || phases["chrome-open"] != "i" {
		t.Fatalf("phases %v", phases)
	}

	for _, bad := range []string{
		`not json`,
		`{}`,
		`{"traceEvents":[{"ph":"X","ts":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"??","ts":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"X"}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","ts":-5}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-1}]}`,
	} {
		if _, err := ValidateChromeTrace([]byte(bad)); err == nil {
			t.Errorf("accepted invalid chrome trace %s", bad)
		}
	}
}

func TestSlowOpLog(t *testing.T) {
	withTracing(t)
	prev := SetSlowThreshold(20 * time.Millisecond)
	defer SetSlowThreshold(prev)
	sp := StartRoot("slow-op")
	time.Sleep(30 * time.Millisecond)
	sp.End()
	fast := StartRoot("fast-op")
	fast.End()

	found := false
	for _, r := range SlowOps() {
		if r.Name == "fast-op" {
			t.Fatal("fast span landed in the slow-op log")
		}
		if r.Name == "slow-op" && r.Slow {
			found = true
		}
	}
	if !found {
		t.Fatal("slow span missing from the slow-op log")
	}
}

func TestDebugTraceHandler(t *testing.T) {
	withTracing(t)
	sp := StartRoot("handler-span")
	sp.End()
	h := Handler()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}
	rec := get("/debug/trace")
	if rec.Code != 200 {
		t.Fatalf("/debug/trace: HTTP %d", rec.Code)
	}
	if n, err := ValidateChromeTrace(rec.Body.Bytes()); err != nil || n < 1 {
		t.Fatalf("/debug/trace: %d events, err %v", n, err)
	}
	rec = get("/debug/trace?view=slow")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "slow_ops") {
		t.Fatalf("view=slow: HTTP %d body %.80s", rec.Code, rec.Body)
	}
	rec = get("/debug/trace?view=flight")
	if rec.Code != 200 {
		t.Fatalf("view=flight: HTTP %d", rec.Code)
	}
	if d, err := ValidateDump(rec.Body.Bytes()); err != nil || d.Reason != "http" {
		t.Fatalf("view=flight: %v (err %v)", d, err)
	}
	if rec := get("/debug/trace?view=bogus"); rec.Code != 400 {
		t.Fatalf("view=bogus: HTTP %d, want 400", rec.Code)
	}
}

// traceGoroutines returns stacks of goroutines running package code,
// excluding test runners — the flusher-leak oracle, mirroring
// internal/mpi's leak_test.go.
func traceGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var got []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "repro/internal/trace.") {
			continue
		}
		if strings.Contains(g, "testing.tRunner") {
			continue
		}
		got = append(got, g)
	}
	return got
}

func assertNoFlusherLeak(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = traceGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("%d trace goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}

func TestStartFlightDumpSIGQUITAndStop(t *testing.T) {
	withTracing(t)
	path := filepath.Join(t.TempDir(), "sigquit.json")
	Subsystem("trace-test-sigquit").Event("pre-signal")
	stop := StartFlightDump(path)

	before := DumpCount()
	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for DumpCount() == before {
		if time.Now().After(deadline) {
			t.Fatal("SIGQUIT did not produce a flight dump")
		}
		time.Sleep(5 * time.Millisecond)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ValidateDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "SIGQUIT" {
		t.Fatalf("reason %q, want SIGQUIT", d.Reason)
	}

	// stop is idempotent and must terminate the flusher goroutine.
	stop()
	stop()
	assertNoFlusherLeak(t)
	SetDumpPath("")
}
