// Package repro is an order-invariant summation library for Go,
// reproducing the High-Precision (HP) method of Small, Kalia, Nakano and
// Vashishta, "Order-Invariant Real Number Summation: Circumventing Accuracy
// Loss for Multimillion Summands on Multiple Parallel Architectures"
// (IEEE IPDPS 2016).
//
// Floating-point addition is not associative, so a parallel reduction's
// result depends on thread count and schedule. The HP method represents a
// real number as N 64-bit limbs forming one two's-complement fixed-point
// integer with k fractional limbs; addition becomes exact integer
// arithmetic, making the sum of any value set bit-identical regardless of
// summation order, goroutine count, or machine.
//
// # Quick start
//
//	acc := repro.NewAccumulator(repro.Params384)
//	for _, x := range values {
//		acc.Add(x)
//	}
//	sum, err := acc.Float64(), acc.Err()
//
// For concurrent accumulation use NewAtomic; for inputs of unknown range
// use NewAdaptive, which widens its format on demand (the paper's proposed
// future extension). ParallelSum is a convenience that fans a slice out
// over goroutines and combines the partials deterministically.
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/omp"
)

// Params selects an HP format: N total 64-bit limbs with K fractional
// limbs. Range is ±2^(64(N-K)-1); resolution is 2^(-64K).
type Params = core.Params

// Preset formats from the paper's evaluation.
var (
	// Params128 is HP(N=2, k=1): range ±9.2e18, resolution 5.4e-20.
	Params128 = core.Params128
	// Params192 is HP(N=3, k=2), the paper's Figure 1 configuration.
	Params192 = core.Params192
	// Params384 is HP(N=6, k=3), the strong-scaling configuration and a
	// good general default: range ±3.1e57, resolution 1.6e-58.
	Params384 = core.Params384
	// Params512 is HP(N=8, k=4), the high-precision configuration.
	Params512 = core.Params512
)

// Errors surfaced by conversions and accumulation.
var (
	// ErrNotFinite reports conversion of NaN or ±Inf.
	ErrNotFinite = core.ErrNotFinite
	// ErrOverflow reports a value or sum beyond the format's range.
	ErrOverflow = core.ErrOverflow
	// ErrUnderflow reports a value with bits below the format's resolution.
	ErrUnderflow = core.ErrUnderflow
)

// HP is a single high-precision fixed-point value.
type HP = core.HP

// Accumulator sums float64 values into one HP number sequentially. See
// core.Accumulator for the full method set.
type Accumulator = core.Accumulator

// Atomic is an HP accumulator safe for concurrent Add from many goroutines.
type Atomic = core.Atomic

// Adaptive is an HP accumulator that widens its format at runtime to fit
// any finite float64, eliminating the a-priori range choice.
type Adaptive = core.Adaptive

// BatchAccumulator is the carry-save batch accumulator: the highest-
// throughput sequential path, deferring cross-limb carries across a batch
// of summands and folding them at normalize points. Its canonical sums are
// bit-identical to Accumulator's. See core.BatchAccumulator.
type BatchAccumulator = core.BatchAccumulator

// NewBatch returns a zeroed carry-save batch accumulator with format p.
func NewBatch(p Params) *BatchAccumulator { return core.NewBatch(p) }

// SuperAccumulator is the exponent-indexed superaccumulator: the fastest
// sequential path, absorbing each value as a single indexed integer add
// into a per-exponent bin and folding the bins into canonical form at
// counted spill points. Its canonical sums are bit-identical to
// Accumulator's. See core.SuperAccumulator.
type SuperAccumulator = core.SuperAccumulator

// NewSuper returns a zeroed exponent-indexed superaccumulator with format p.
func NewSuper(p Params) *SuperAccumulator { return core.NewSuper(p) }

// NewAccumulator returns a zeroed sequential accumulator with format p.
func NewAccumulator(p Params) *Accumulator { return core.NewAccumulator(p) }

// NewAtomic returns a zeroed concurrent accumulator with format p.
func NewAtomic(p Params) *Atomic { return core.NewAtomic(p) }

// NewAdaptive returns an adaptive accumulator starting from format p
// (Params128 is a sensible seed; it grows as needed).
func NewAdaptive(p Params) *Adaptive { return core.NewAdaptive(p) }

// NewHP returns a zero HP value with format p, for callers that work with
// raw values (serialization, comparisons, scratch buffers).
func NewHP(p Params) *HP { return core.New(p) }

// FromFloat64 converts x exactly into a new HP value with format p.
func FromFloat64(p Params, x float64) (*HP, error) { return core.FromFloat64(p, x) }

// Sum returns the order-invariant sum of xs under format p, rounded to
// float64, plus the first range error encountered (if any).
func Sum(p Params, xs []float64) (float64, error) { return core.Sum(p, xs) }

// SumHP is Sum returning the full-precision HP result.
func SumHP(p Params, xs []float64) (*HP, error) { return core.SumHP(p, xs) }

// ParallelSum partitions xs over the given number of goroutines, reduces
// each block locally, and combines the partial sums. Because HP addition is
// exact integer arithmetic, the result is bit-identical to the sequential
// sum for every worker count.
func ParallelSum(p Params, xs []float64, workers int) (float64, error) {
	hp, err := ParallelSumHP(p, xs, workers)
	if err != nil {
		return 0, err
	}
	return hp.Float64(), nil
}

// ParallelSumHP is ParallelSum returning the full-precision HP result.
//
// Each worker folds its block through the exponent-indexed superaccumulator,
// so block partials are carried exactly mod 2^(64N) with carries deferred in
// per-exponent bins; the master combines them in ascending thread order
// through a checked accumulator. Conversion faults (NaN/Inf/range) are
// detected identically to the sequential path; a partial that transiently
// exceeds the signed range but cancels before its combine point is not an
// error, matching the scan package's wrap-and-check-at-combine policy.
func ParallelSumHP(p Params, xs []float64, workers int) (*HP, error) {
	if workers < 1 {
		return nil, fmt.Errorf("repro: worker count %d", workers)
	}
	team := omp.NewTeam(workers)
	total := omp.Reduce(team, len(xs),
		func(int) *core.SuperAccumulator { return core.NewSuper(p) },
		func(local *core.SuperAccumulator, _, lo, hi int) { local.AddSlice(xs[lo:hi]) },
		func(into, from *core.SuperAccumulator) { into.MergeChecked(from) })
	if err := total.Err(); err != nil {
		return nil, err
	}
	return total.Sum(), nil
}

// ErrProductRange reports a product outside the error-free transformation
// range of Dot/AddProduct.
var ErrProductRange = core.ErrProductRange

// Dot returns the exact dot product of xs and ys, correctly rounded: each
// product is split error-free (Dekker TwoProduct) and both halves are
// accumulated exactly, so the result is order-invariant and bit-identical
// on every architecture.
func Dot(p Params, xs, ys []float64) (float64, error) { return core.Dot(p, xs, ys) }

// DotHP is Dot returning the full-precision HP result.
func DotHP(p Params, xs, ys []float64) (*HP, error) { return core.DotHP(p, xs, ys) }

// AdaptiveSum sums arbitrary finite values with automatic format widening
// and returns the correctly rounded float64 result.
func AdaptiveSum(xs []float64) (float64, error) {
	a := core.NewAdaptive(Params128)
	if err := a.AddAll(xs); err != nil {
		return 0, err
	}
	return a.Float64(), nil
}
