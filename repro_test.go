package repro

import (
	"math"
	"sync"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestSumMatchesOracle(t *testing.T) {
	r := rng.New(101)
	xs := rng.UniformSet(r, 10000, -0.5, 0.5)
	got, err := Sum(Params384, xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := exact.Sum(xs); got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestParallelSumInvariantAcrossWorkers(t *testing.T) {
	r := rng.New(102)
	xs := rng.UniformSet(r, 30000, -0.5, 0.5)
	ref, err := SumHP(Params384, xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8, 16} {
		hp, err := ParallelSumHP(Params384, xs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !hp.Equal(ref) {
			t.Errorf("workers=%d: parallel sum differs from sequential", workers)
		}
	}
	if _, err := ParallelSum(Params384, xs, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestParallelSumPropagatesRangeError(t *testing.T) {
	xs := []float64{1, 1e300, 2}
	if _, err := ParallelSum(Params128, xs, 4); err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
}

func TestAccumulatorFacade(t *testing.T) {
	acc := NewAccumulator(Params192)
	acc.Add(0.1)
	acc.Add(0.2)
	acc.Add(-0.3)
	if err := acc.Err(); err != nil {
		t.Fatal(err)
	}
	// 0.1 + 0.2 + (-0.3) in binary is NOT zero exactly; the HP sum must
	// equal the exact sum of the three binary values.
	want := exact.Sum([]float64{0.1, 0.2, -0.3})
	if got := acc.Float64(); got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestAtomicFacade(t *testing.T) {
	acc := NewAtomic(Params384)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := acc.AddFloat64(0.5); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := acc.Snapshot().Float64(); got != 4000 {
		t.Errorf("atomic sum = %g, want 4000", got)
	}
}

func TestAdaptiveSumFullRange(t *testing.T) {
	xs := []float64{math.MaxFloat64, -math.MaxFloat64, 1e-300, 2.5}
	got, err := AdaptiveSum(xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := exact.Sum(xs); got != want {
		t.Errorf("AdaptiveSum = %g, want %g", got, want)
	}
	if _, err := AdaptiveSum([]float64{math.NaN()}); err != ErrNotFinite {
		t.Errorf("NaN: %v", err)
	}
}

func TestFromFloat64Facade(t *testing.T) {
	hp, err := FromFloat64(Params192, -1.25)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Float64() != -1.25 {
		t.Error("facade round trip")
	}
	if _, err := FromFloat64(Params128, 1e300); err != ErrOverflow {
		t.Errorf("overflow: %v", err)
	}
	if _, err := FromFloat64(Params128, 1e-30); err != ErrUnderflow {
		t.Errorf("underflow: %v", err)
	}
}

// The headline demonstration: a permuted sum differs under float64 but is
// bit-identical under HP.
func TestOrderInvarianceDemonstration(t *testing.T) {
	r := rng.New(103)
	xs := rng.ZeroSum(r, 4096, 0.001)
	ys := rng.Reorder(r, xs)

	hpX, err := SumHP(Params192, xs)
	if err != nil {
		t.Fatal(err)
	}
	hpY, err := SumHP(Params192, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !hpX.Equal(hpY) {
		t.Error("HP sums differ across permutations")
	}
	if hpX.Float64() != 0 {
		t.Errorf("HP zero-sum = %g", hpX.Float64())
	}
}

func TestBLASFacade(t *testing.T) {
	r := rng.New(104)
	xs := rng.UniformSet(r, 5000, -1, 1)
	ys := rng.UniformSet(r, 5000, -1, 1)

	asum, err := ASum(Params512, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if asum <= 0 {
		t.Error("ASum not positive")
	}
	nrm, err := Nrm2(Params512, []float64{3, 4}, 2)
	if err != nil || nrm != 5 {
		t.Errorf("Nrm2 = %g, %v", nrm, err)
	}
	mean, err := Mean(Params512, []float64{1, 2, 3, 4}, 3)
	if err != nil || mean != 2.5 {
		t.Errorf("Mean = %g, %v", mean, err)
	}
	v, err := Variance(Params512, []float64{1e9, 1e9 + 1, 1e9 + 2}, 2)
	if err != nil || v != 1 {
		t.Errorf("Variance = %g, %v", v, err)
	}
	d1, err := DotParallel(Params512, xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := DotParallel(Params512, xs, ys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d8 {
		t.Error("DotParallel not worker-invariant")
	}
	seq, err := Dot(Params512, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != seq {
		t.Error("DotParallel != Dot")
	}
}

func TestPrefixSumFacade(t *testing.T) {
	r := rng.New(105)
	xs := rng.UniformSet(r, 3000, -0.5, 0.5)
	a, err := PrefixSum(Params384, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrefixSum(Params384, xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prefix %d differs across worker counts", i)
		}
	}
	ex, err := PrefixSumExclusive(Params384, []float64{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ex[0] != 0 || ex[1] != 1 || ex[2] != 3 {
		t.Errorf("exclusive = %v", ex)
	}
}
